#include "paillier/paillier.hpp"

#include <stdexcept>

#include "bigint/prime.hpp"
#include "core/parallel.hpp"
#include "core/telemetry.hpp"

namespace dubhe::he {

namespace {

/// Crypto-op telemetry (counts + latency histograms, fixed-base vs plain
/// noise path). Out-of-band: no RNG or ciphertext state is touched, so
/// instrumented and uninstrumented runs are byte-identical.
telemetry::Histogram& encrypt_hist(bool fixed_base) {
  static telemetry::Histogram& fb = telemetry::histogram(
      "dubhe_paillier_encrypt_seconds{mode=\"fixed_base\"}");
  static telemetry::Histogram& plain =
      telemetry::histogram("dubhe_paillier_encrypt_seconds{mode=\"plain\"}");
  return fixed_base ? fb : plain;
}
telemetry::Counter& encrypt_count(bool fixed_base) {
  static telemetry::Counter& fb =
      telemetry::counter("dubhe_paillier_encrypt_total{mode=\"fixed_base\"}");
  static telemetry::Counter& plain =
      telemetry::counter("dubhe_paillier_encrypt_total{mode=\"plain\"}");
  return fixed_base ? fb : plain;
}

}  // namespace

PublicKey::PublicKey(BigUint n)
    : n_(std::move(n)),
      n_sq_(n_ * n_),
      mont_n2_(std::make_shared<bigint::Montgomery>(n_sq_)) {}

std::size_t PublicKey::ciphertext_bytes() const { return (2 * key_bits() + 7) / 8; }

std::size_t PublicKey::plaintext_bytes() const { return (key_bits() + 7) / 8; }

Ciphertext PublicKey::encrypt_deterministic(const BigUint& m) const {
  if (m >= n_) throw std::out_of_range("Paillier: plaintext must be < n");
  // g^m with g = n+1: (1 + m*n) mod n^2 — a single multiplication. The
  // reduction is free: m <= n-1 gives 1 + m*n <= n^2 - n + 1 < n^2, so no
  // division is needed.
  return Ciphertext{BigUint{1} + m * n_};
}

Ciphertext PublicKey::encrypt(const BigUint& m, bigint::EntropySource& rng) const {
  const bool fixed_base = noise_table_ != nullptr;
  encrypt_count(fixed_base).inc();
  telemetry::ScopedTimer timer(encrypt_hist(fixed_base));
  Ciphertext gm = encrypt_deterministic(m);
  return rerandomize(gm, rng);
}

Ciphertext PublicKey::rerandomize(const Ciphertext& a, bigint::EntropySource& rng) const {
  BigUint rn;
  if (noise_table_ != nullptr) {
    // Fixed-base path: noise = (h^n)^x, one table product per 4 bits of x.
    BigUint x;
    do {
      x = bigint::random_bits(rng, noise_bits_);
    } while (x.is_zero());
    rn = noise_table_->pow(x);
  } else {
    BigUint r;
    do {
      r = bigint::random_below(rng, n_);
    } while (r.is_zero() || !BigUint::gcd(r, n_).is_one());
    rn = mont_n2_->pow(r, n_);
  }
  return Ciphertext{a.c.mul_mod(rn, n_sq_)};
}

void PublicKey::precompute_noise(bigint::EntropySource& rng, std::size_t noise_bits) {
  if (n_.is_zero()) throw std::logic_error("Paillier: empty public key");
  noise_bits_ = noise_bits == 0 ? key_bits() / 2 : noise_bits;
  BigUint h;
  do {
    h = bigint::random_below(rng, n_sq_);
  } while (h.is_zero() || h.is_one() || !BigUint::gcd(h, n_).is_one());
  const BigUint hn = mont_n2_->pow(h, n_);
  noise_table_ =
      std::make_shared<bigint::FixedBaseTable>(mont_n2_, hn, noise_bits_);
}

std::vector<Ciphertext> PublicKey::encrypt_batch(std::span<const BigUint> ms,
                                                 std::span<const StreamState> states,
                                                 const BatchOptions& opt) const {
  if (states.size() != ms.size()) {
    throw std::invalid_argument("encrypt_batch: one stream state per message required");
  }
  std::vector<Ciphertext> out(ms.size());
  core::parallel_for(ms.size(), opt.threads, [&](std::size_t i) {
    bigint::Xoshiro256ss stream(states[i]);
    out[i] = encrypt(ms[i], stream);
  });
  return out;
}

std::vector<Ciphertext> PublicKey::encrypt_batch(std::span<const BigUint> ms,
                                                 std::uint64_t seed,
                                                 const BatchOptions& opt) const {
  std::vector<Ciphertext> out(ms.size());
  core::parallel_for(ms.size(), opt.threads, [&](std::size_t i) {
    bigint::Xoshiro256ss stream(bigint::derive_seed(seed, i));
    out[i] = encrypt(ms[i], stream);
  });
  return out;
}

std::vector<Ciphertext> PublicKey::rerandomize_batch(std::span<const Ciphertext> cts,
                                                     std::uint64_t seed,
                                                     const BatchOptions& opt) const {
  std::vector<Ciphertext> out(cts.size());
  core::parallel_for(cts.size(), opt.threads, [&](std::size_t i) {
    bigint::Xoshiro256ss stream(bigint::derive_seed(seed, i));
    out[i] = rerandomize(cts[i], stream);
  });
  return out;
}

Ciphertext PublicKey::add(const Ciphertext& a, const Ciphertext& b) const {
  static telemetry::Counter& adds = telemetry::counter("dubhe_paillier_add_total");
  static telemetry::Histogram& hist =
      telemetry::histogram("dubhe_paillier_add_seconds");
  adds.inc();
  telemetry::ScopedTimer timer(hist);
  return Ciphertext{a.c.mul_mod(b.c, n_sq_)};
}

Ciphertext PublicKey::add_plain(const Ciphertext& a, const BigUint& m) const {
  return add(a, encrypt_deterministic(m % n_));
}

Ciphertext PublicKey::mul_plain(const Ciphertext& a, const BigUint& k) const {
  return Ciphertext{mont_n2_->pow(a.c, k)};
}

BigUint PrivateKey::l_function(const BigUint& x, const BigUint& d) {
  // L(x) = (x - 1) / d, exact by construction for valid inputs.
  return (x - BigUint{1}) / d;
}

PrivateKey::PrivateKey(const BigUint& p, const BigUint& q) : p_(p), q_(q) {
  if (p == q) throw std::invalid_argument("Paillier: p and q must differ");
  if (!p.is_odd() || !q.is_odd()) {
    throw std::invalid_argument("Paillier: p and q must be odd primes");
  }
  const BigUint n = p * q;
  pub_ = PublicKey(n);
  p_sq_ = p * p;
  q_sq_ = q * q;
  mont_p2_ = std::make_shared<bigint::Montgomery>(p_sq_);
  mont_q2_ = std::make_shared<bigint::Montgomery>(q_sq_);

  const BigUint p1 = p - BigUint{1}, q1 = q - BigUint{1};
  // CRT helpers: hp = L_p(g^{p-1} mod p^2)^{-1} mod p, likewise hq.
  // With g = n+1: g^{p-1} mod p^2 = 1 + (p-1)*n mod p^2.
  const BigUint gp = (BigUint{1} + p1 * n) % p_sq_;
  const BigUint gq = (BigUint{1} + q1 * n) % q_sq_;
  hp_ = BigUint::mod_inverse(l_function(gp, p) % p, p);
  hq_ = BigUint::mod_inverse(l_function(gq, q) % q, q);
  q_inv_p_ = BigUint::mod_inverse(q % p, p);

  // Textbook route: lambda = lcm(p-1, q-1), mu = L(g^lambda mod n^2)^{-1} mod n.
  lambda_ = BigUint::lcm(p1, q1);
  const BigUint gl = (BigUint{1} + lambda_ * n) % pub_.n_squared();
  mu_ = BigUint::mod_inverse(l_function(gl, n) % n, n);
}

BigUint PrivateKey::decrypt(const Ciphertext& ct) const {
  static telemetry::Counter& decrypts =
      telemetry::counter("dubhe_paillier_decrypt_total");
  static telemetry::Histogram& hist =
      telemetry::histogram("dubhe_paillier_decrypt_seconds");
  decrypts.inc();
  telemetry::ScopedTimer timer(hist);
  if (ct.c >= pub_.n_squared()) {
    throw std::out_of_range("Paillier: ciphertext out of range");
  }
  const BigUint p1 = p_ - BigUint{1}, q1 = q_ - BigUint{1};
  const BigUint mp = (l_function(mont_p2_->pow(ct.c % p_sq_, p1), p_) % p_)
                         .mul_mod(hp_, p_);
  const BigUint mq = (l_function(mont_q2_->pow(ct.c % q_sq_, q1), q_) % q_)
                         .mul_mod(hq_, q_);
  // CRT recombination: m = mq + q * ((mp - mq) * q^{-1} mod p).
  BigUint diff;
  if (mp >= mq % p_) {
    diff = mp - (mq % p_);
  } else {
    diff = p_ - ((mq % p_) - mp);
  }
  const BigUint t = diff.mul_mod(q_inv_p_, p_);
  return mq + q_ * t;
}

std::vector<BigUint> PrivateKey::decrypt_batch(std::span<const Ciphertext> cts,
                                               const BatchOptions& opt) const {
  std::vector<BigUint> out(cts.size());
  core::parallel_for(cts.size(), opt.threads,
                     [&](std::size_t i) { out[i] = decrypt(cts[i]); });
  return out;
}

BigUint PrivateKey::decrypt_textbook(const Ciphertext& ct) const {
  const BigUint& n = pub_.n();
  const BigUint& n2 = pub_.n_squared();
  const BigUint cl = ct.c.pow_mod(lambda_, n2);
  return (l_function(cl, n) % n).mul_mod(mu_, n);
}

Keypair Keypair::generate(bigint::EntropySource& rng, std::size_t key_bits) {
  if (key_bits < 16) throw std::invalid_argument("Paillier: key too small");
  const std::size_t half = key_bits / 2;
  for (;;) {
    const BigUint p = bigint::random_prime(rng, half);
    const BigUint q = bigint::random_prime(rng, key_bits - half);
    if (p == q) continue;
    if ((p * q).bit_length() != key_bits) continue;
    PrivateKey prv(p, q);
    PublicKey pub = prv.public_key();
    return Keypair{std::move(pub), std::move(prv)};
  }
}

std::vector<std::uint8_t> serialize(const Ciphertext& ct, const PublicKey& pk) {
  const std::size_t body = pk.ciphertext_bytes();
  std::vector<std::uint8_t> out(4 + body);
  out[0] = static_cast<std::uint8_t>(body >> 24);
  out[1] = static_cast<std::uint8_t>(body >> 16);
  out[2] = static_cast<std::uint8_t>(body >> 8);
  out[3] = static_cast<std::uint8_t>(body);
  const std::vector<std::uint8_t> mag = ct.c.to_bytes_be(body);
  std::copy(mag.begin(), mag.end(), out.begin() + 4);
  return out;
}

Ciphertext deserialize_ciphertext(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 4) throw std::invalid_argument("ciphertext: short buffer");
  const std::size_t body = (static_cast<std::size_t>(bytes[0]) << 24) |
                           (static_cast<std::size_t>(bytes[1]) << 16) |
                           (static_cast<std::size_t>(bytes[2]) << 8) |
                           static_cast<std::size_t>(bytes[3]);
  if (bytes.size() < 4 + body) throw std::invalid_argument("ciphertext: truncated");
  return Ciphertext{BigUint::from_bytes_be(bytes.subspan(4, body))};
}

namespace {

void append_field(std::vector<std::uint8_t>& out, const BigUint& v) {
  const std::vector<std::uint8_t> mag = v.to_bytes_be();
  const std::size_t body = mag.size();
  out.push_back(static_cast<std::uint8_t>(body >> 24));
  out.push_back(static_cast<std::uint8_t>(body >> 16));
  out.push_back(static_cast<std::uint8_t>(body >> 8));
  out.push_back(static_cast<std::uint8_t>(body));
  out.insert(out.end(), mag.begin(), mag.end());
}

BigUint read_field(std::span<const std::uint8_t>& bytes) {
  if (bytes.size() < 4) throw std::invalid_argument("key field: short buffer");
  const std::size_t body = (static_cast<std::size_t>(bytes[0]) << 24) |
                           (static_cast<std::size_t>(bytes[1]) << 16) |
                           (static_cast<std::size_t>(bytes[2]) << 8) |
                           static_cast<std::size_t>(bytes[3]);
  if (bytes.size() < 4 + body) throw std::invalid_argument("key field: truncated");
  // append_field writes trimmed magnitudes; accept only that canonical form
  // so a parsed field always re-serializes to the identical bytes (the net
  // layer's exact-size accounting and byte-identity tests rely on it).
  if (body > 0 && bytes[4] == 0) {
    throw std::invalid_argument("key field: non-canonical leading zero");
  }
  BigUint v = BigUint::from_bytes_be(bytes.subspan(4, body));
  bytes = bytes.subspan(4 + body);
  return v;
}

}  // namespace

std::vector<std::uint8_t> serialize(const PublicKey& pk) {
  std::vector<std::uint8_t> out{'P'};
  append_field(out, pk.n());
  return out;
}

PublicKey deserialize_public_key(std::span<const std::uint8_t> bytes) {
  return deserialize_public_key_prefix(bytes);
}

PublicKey deserialize_public_key_prefix(std::span<const std::uint8_t>& bytes) {
  if (bytes.empty() || bytes[0] != 'P') {
    throw std::invalid_argument("public key: bad tag");
  }
  bytes = bytes.subspan(1);
  return PublicKey(read_field(bytes));
}

std::vector<std::uint8_t> serialize(const PrivateKey& prv) {
  std::vector<std::uint8_t> out{'S'};
  append_field(out, prv.p());
  append_field(out, prv.q());
  return out;
}

PrivateKey deserialize_private_key(std::span<const std::uint8_t> bytes) {
  return deserialize_private_key_prefix(bytes);
}

PrivateKey deserialize_private_key_prefix(std::span<const std::uint8_t>& bytes) {
  if (bytes.empty() || bytes[0] != 'S') {
    throw std::invalid_argument("private key: bad tag");
  }
  bytes = bytes.subspan(1);
  const BigUint p = read_field(bytes);
  const BigUint q = read_field(bytes);
  return PrivateKey(p, q);
}

namespace {
/// Length of one length-prefixed trimmed-magnitude field.
std::size_t field_size(const BigUint& v) { return 4 + (v.bit_length() + 7) / 8; }
}  // namespace

std::size_t serialized_size(const PublicKey& pk) { return 1 + field_size(pk.n()); }

std::size_t serialized_size(const PrivateKey& prv) {
  return 1 + field_size(prv.p()) + field_size(prv.q());
}

}  // namespace dubhe::he
