#include "paillier/packing.hpp"

#include <stdexcept>

namespace dubhe::he {

PackedCodec::PackedCodec(std::size_t capacity_bits, std::size_t slot_bits)
    : slot_bits_(slot_bits), slots_per_pt_(0) {
  if (slot_bits == 0 || slot_bits > 64) {
    throw std::invalid_argument("PackedCodec: slot_bits must be in [1, 64]");
  }
  slots_per_pt_ = capacity_bits / slot_bits;
  if (slots_per_pt_ == 0) {
    throw std::invalid_argument("PackedCodec: capacity too small for one slot");
  }
}

std::size_t PackedCodec::plaintexts_for(std::size_t count) const {
  return (count + slots_per_pt_ - 1) / slots_per_pt_;
}

std::uint64_t PackedCodec::max_additions(std::uint64_t max_value) const {
  if (max_value == 0) return UINT64_MAX;
  const std::uint64_t slot_cap =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  return slot_cap / max_value;
}

std::vector<BigUint> PackedCodec::encode(std::span<const std::uint64_t> values) const {
  const std::uint64_t slot_cap =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  std::vector<BigUint> out(plaintexts_for(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > slot_cap) {
      throw std::out_of_range("PackedCodec: value exceeds slot width");
    }
    const std::size_t pt = i / slots_per_pt_;
    const std::size_t slot = i % slots_per_pt_;
    out[pt] += BigUint{values[i]} << (slot * slot_bits_);
  }
  return out;
}

std::vector<std::uint64_t> PackedCodec::decode(std::span<const BigUint> plaintexts,
                                               std::size_t count) const {
  std::vector<std::uint64_t> out(count, 0);
  const std::uint64_t mask =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pt = i / slots_per_pt_;
    if (pt >= plaintexts.size()) {
      throw std::out_of_range("PackedCodec: not enough plaintexts");
    }
    const BigUint shifted = plaintexts[pt] >> (i % slots_per_pt_ * slot_bits_);
    out[i] = shifted.to_u64() & mask;
  }
  return out;
}

PackedEncryptedVector PackedEncryptedVector::encrypt(
    const PublicKey& pk, const PackedCodec& codec,
    std::span<const std::uint64_t> values, bigint::EntropySource& rng,
    const BatchOptions& opt) {
  PackedEncryptedVector v;
  v.pk_ = pk;
  v.codec_ = codec;
  v.count_ = values.size();
  const std::vector<BigUint> pts = codec.encode(values);
  std::vector<PublicKey::StreamState> states(pts.size());
  for (auto& s : states) {  // a full 256-bit stream state per ciphertext
    s = {rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()};
  }
  v.cts_ = pk.encrypt_batch(pts, states, opt);
  return v;
}

PackedEncryptedVector PackedEncryptedVector::encrypt_direct(
    const PublicKey& pk, const PackedCodec& codec,
    std::span<const std::uint64_t> values, bigint::EntropySource& rng) {
  PackedEncryptedVector v;
  v.pk_ = pk;
  v.codec_ = codec;
  v.count_ = values.size();
  const std::vector<BigUint> pts = codec.encode(values);
  v.cts_.reserve(pts.size());
  for (const BigUint& pt : pts) v.cts_.push_back(pk.encrypt(pt, rng));
  return v;
}

PackedEncryptedVector& PackedEncryptedVector::operator+=(const PackedEncryptedVector& o) {
  if (count_ != o.count_ || cts_.size() != o.cts_.size()) {
    throw std::invalid_argument("PackedEncryptedVector: size mismatch");
  }
  for (std::size_t i = 0; i < cts_.size(); ++i) {
    cts_[i] = pk_.add(cts_[i], o.cts_[i]);
  }
  return *this;
}

std::vector<std::uint64_t> PackedEncryptedVector::decrypt(
    const PrivateKey& prv, const BatchOptions& opt) const {
  return codec_.decode(prv.decrypt_batch(cts_, opt), count_);
}

std::size_t PackedEncryptedVector::byte_size() const {
  return cts_.size() * (4 + pk_.ciphertext_bytes());
}

}  // namespace dubhe::he
