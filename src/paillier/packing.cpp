#include "paillier/packing.hpp"

#include <stdexcept>

#include "paillier/serial_util.hpp"

namespace dubhe::he {

PackedCodec::PackedCodec(std::size_t capacity_bits, std::size_t slot_bits)
    : slot_bits_(slot_bits), slots_per_pt_(0) {
  if (slot_bits == 0 || slot_bits > 64) {
    throw std::invalid_argument("PackedCodec: slot_bits must be in [1, 64]");
  }
  slots_per_pt_ = capacity_bits / slot_bits;
  if (slots_per_pt_ == 0) {
    throw std::invalid_argument("PackedCodec: capacity too small for one slot");
  }
}

std::size_t PackedCodec::plaintexts_for(std::size_t count) const {
  return (count + slots_per_pt_ - 1) / slots_per_pt_;
}

std::uint64_t PackedCodec::max_additions(std::uint64_t max_value) const {
  if (max_value == 0) return UINT64_MAX;
  const std::uint64_t slot_cap =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  return slot_cap / max_value;
}

std::vector<BigUint> PackedCodec::encode(std::span<const std::uint64_t> values) const {
  const std::uint64_t slot_cap =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  std::vector<BigUint> out(plaintexts_for(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > slot_cap) {
      throw std::out_of_range("PackedCodec: value exceeds slot width");
    }
    const std::size_t pt = i / slots_per_pt_;
    const std::size_t slot = i % slots_per_pt_;
    out[pt] += BigUint{values[i]} << (slot * slot_bits_);
  }
  return out;
}

std::vector<std::uint64_t> PackedCodec::decode(std::span<const BigUint> plaintexts,
                                               std::size_t count) const {
  std::vector<std::uint64_t> out(count, 0);
  const std::uint64_t mask =
      slot_bits_ >= 64 ? UINT64_MAX : (std::uint64_t{1} << slot_bits_) - 1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pt = i / slots_per_pt_;
    if (pt >= plaintexts.size()) {
      throw std::out_of_range("PackedCodec: not enough plaintexts");
    }
    const BigUint shifted = plaintexts[pt] >> (i % slots_per_pt_ * slot_bits_);
    out[i] = shifted.to_u64() & mask;
  }
  return out;
}

PackedEncryptedVector::PackedEncryptedVector(PublicKey pk, PackedCodec codec,
                                             std::size_t logical_size,
                                             std::vector<Ciphertext> cts)
    : pk_(std::move(pk)), codec_(codec), count_(logical_size), cts_(std::move(cts)) {
  if (cts_.size() != codec_.plaintexts_for(count_)) {
    throw std::invalid_argument(
        "PackedEncryptedVector: ciphertext count does not match the codec");
  }
}

PackedEncryptedVector PackedEncryptedVector::encrypt(
    const PublicKey& pk, const PackedCodec& codec,
    std::span<const std::uint64_t> values, bigint::EntropySource& rng,
    const BatchOptions& opt) {
  PackedEncryptedVector v;
  v.pk_ = pk;
  v.codec_ = codec;
  v.count_ = values.size();
  const std::vector<BigUint> pts = codec.encode(values);
  std::vector<PublicKey::StreamState> states(pts.size());
  for (auto& s : states) {  // a full 256-bit stream state per ciphertext
    s = {rng.next_u64(), rng.next_u64(), rng.next_u64(), rng.next_u64()};
  }
  v.cts_ = pk.encrypt_batch(pts, states, opt);
  return v;
}

PackedEncryptedVector PackedEncryptedVector::encrypt_direct(
    const PublicKey& pk, const PackedCodec& codec,
    std::span<const std::uint64_t> values, bigint::EntropySource& rng) {
  PackedEncryptedVector v;
  v.pk_ = pk;
  v.codec_ = codec;
  v.count_ = values.size();
  const std::vector<BigUint> pts = codec.encode(values);
  v.cts_.reserve(pts.size());
  for (const BigUint& pt : pts) v.cts_.push_back(pk.encrypt(pt, rng));
  return v;
}

PackedEncryptedVector& PackedEncryptedVector::operator+=(const PackedEncryptedVector& o) {
  if (count_ != o.count_ || cts_.size() != o.cts_.size() ||
      codec_.slot_bits() != o.codec_.slot_bits()) {
    throw std::invalid_argument("PackedEncryptedVector: size mismatch");
  }
  if (!(pk_ == o.pk_)) {
    throw std::invalid_argument("PackedEncryptedVector: key mismatch");
  }
  for (std::size_t i = 0; i < cts_.size(); ++i) {
    cts_[i] = pk_.add(cts_[i], o.cts_[i]);
  }
  return *this;
}

std::vector<std::uint64_t> PackedEncryptedVector::decrypt(
    const PrivateKey& prv, const BatchOptions& opt) const {
  return codec_.decode(prv.decrypt_batch(cts_, opt), count_);
}

std::size_t PackedEncryptedVector::byte_size() const {
  return cts_.size() * (4 + pk_.ciphertext_bytes());
}

std::vector<std::uint8_t> serialize(const PackedEncryptedVector& v) {
  std::vector<std::uint8_t> out;
  out.reserve(serialized_size(v.public_key(), v.codec(), v.logical_size()));
  out.push_back('K');
  detail::put_u32_be(out, v.logical_size(), "PackedEncryptedVector");
  detail::put_u32_be(out, v.codec().slot_bits(), "PackedEncryptedVector");
  detail::put_u32_be(out, v.codec().slots_per_plaintext(), "PackedEncryptedVector");
  detail::put_u32_be(out, v.ciphertext_count(), "PackedEncryptedVector");
  const auto pk_bytes = serialize(v.public_key());
  out.insert(out.end(), pk_bytes.begin(), pk_bytes.end());
  for (const Ciphertext& ct : v.ciphertexts()) {
    const auto ct_bytes = serialize(ct, v.public_key());
    out.insert(out.end(), ct_bytes.begin(), ct_bytes.end());
  }
  return out;
}

PackedEncryptedVector deserialize_packed_encrypted_vector(
    std::span<const std::uint8_t> bytes) {
  if (bytes.empty() || bytes[0] != 'K') {
    throw std::invalid_argument("PackedEncryptedVector: bad tag");
  }
  bytes = bytes.subspan(1);
  const std::size_t logical = detail::get_u32_be(bytes, "PackedEncryptedVector");
  const std::size_t slot_bits = detail::get_u32_be(bytes, "PackedEncryptedVector");
  const std::size_t slots_per_pt = detail::get_u32_be(bytes, "PackedEncryptedVector");
  const std::size_t ct_count = detail::get_u32_be(bytes, "PackedEncryptedVector");
  if (slot_bits == 0 || slot_bits > 64 || slots_per_pt == 0) {
    throw std::invalid_argument("PackedEncryptedVector: bad packing geometry");
  }
  const PackedCodec codec(slots_per_pt * slot_bits, slot_bits);
  if (codec.slots_per_plaintext() != slots_per_pt) {
    throw std::invalid_argument("PackedEncryptedVector: inconsistent geometry");
  }
  PublicKey pk = deserialize_public_key_prefix(bytes);
  const std::size_t body = pk.ciphertext_bytes();
  if (bytes.size() != ct_count * (4 + body)) {
    throw std::invalid_argument("PackedEncryptedVector: ciphertext payload mismatch");
  }
  std::vector<Ciphertext> cts;
  cts.reserve(ct_count);
  const BigUint& n2 = pk.n_squared();
  for (std::size_t i = 0; i < ct_count; ++i) {
    // Canonical form only (see deserialize_encrypted_vector).
    if (detail::get_u32_be(bytes, "PackedEncryptedVector ciphertext") != body) {
      throw std::invalid_argument("PackedEncryptedVector: non-canonical length");
    }
    Ciphertext ct{BigUint::from_bytes_be(bytes.first(body))};
    if (!(ct.c < n2)) {
      throw std::invalid_argument("PackedEncryptedVector: ciphertext outside Z_{n^2}");
    }
    cts.push_back(std::move(ct));
    bytes = bytes.subspan(body);
  }
  return PackedEncryptedVector(std::move(pk), codec, logical, std::move(cts));
}

std::size_t serialized_size(const PublicKey& pk, const PackedCodec& codec,
                            std::size_t logical) {
  // 'K' + 4 geometry fields + embedded key + packed ciphertexts.
  return 1 + 4 * 4 + serialized_size(pk) +
         codec.plaintexts_for(logical) * (4 + pk.ciphertext_bytes());
}

}  // namespace dubhe::he
