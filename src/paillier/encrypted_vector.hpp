#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "paillier/paillier.hpp"

namespace dubhe::he {

/// A vector of Paillier ciphertexts with slot-wise homomorphic addition.
/// This is the wire format of Dubhe's *registry* and of the encrypted label
/// distributions exchanged during multi-time selection: each slot holds one
/// counter (registry category count, or a fixed-point label share).
class EncryptedVector {
 public:
  EncryptedVector() = default;
  EncryptedVector(PublicKey pk, std::vector<Ciphertext> slots);

  /// Encrypts each value into its own ciphertext slot via
  /// PublicKey::encrypt_batch: four words drawn from `rng` per slot (in
  /// slot order) seed that slot's own 256-bit randomization stream, so the
  /// result is byte-identical for any opt.threads (see BatchOptions).
  /// Consumes exactly 4 * values.size() generator words — part of the
  /// seeded-reproducibility contract.
  static EncryptedVector encrypt(const PublicKey& pk,
                                 std::span<const std::uint64_t> values,
                                 bigint::EntropySource& rng,
                                 const BatchOptions& opt = {});
  /// Serial full-entropy variant: every slot draws its randomization
  /// directly from `rng` (~key_bits of fresh entropy per slot, the pre-batch
  /// behavior) instead of a 64-bit per-slot stream seed. For deployments
  /// encrypting under a real entropy source; not thread-parallelizable.
  static EncryptedVector encrypt_direct(const PublicKey& pk,
                                        std::span<const std::uint64_t> values,
                                        bigint::EntropySource& rng);
  /// All-zeros encrypted vector (deterministic encryptions of 0, suitable
  /// as the identity for += aggregation on the server).
  static EncryptedVector zeros(const PublicKey& pk, std::size_t size);

  /// Slot-wise homomorphic addition. Throws std::invalid_argument on size or
  /// key mismatch.
  EncryptedVector& operator+=(const EncryptedVector& o);
  friend EncryptedVector operator+(EncryptedVector a, const EncryptedVector& b) {
    a += b;
    return a;
  }

  /// Decrypts every slot. Slot sums must stay below n (always true for the
  /// counters Dubhe transports).
  [[nodiscard]] std::vector<std::uint64_t> decrypt(const PrivateKey& prv,
                                                   const BatchOptions& opt = {}) const;

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const PublicKey& public_key() const { return pk_; }
  [[nodiscard]] const std::vector<Ciphertext>& slots() const { return slots_; }

  /// Exact serialized size in bytes of the bare slot payload (no key
  /// header; what serialize_bytes emits).
  [[nodiscard]] std::size_t byte_size() const;
  [[nodiscard]] std::vector<std::uint8_t> serialize_bytes() const;

 private:
  PublicKey pk_;
  std::vector<Ciphertext> slots_;
};

/// Self-contained wire form: 'V' tag, big-endian u32 slot count, the public
/// key (serialize(PublicKey)), then each slot as serialize(Ciphertext).
/// deserialize_encrypted_vector is the exact inverse; it throws
/// std::invalid_argument on a bad tag, truncation, trailing bytes, or a
/// slot value outside Z_{n^2}. This is the payload the net wire codec
/// carries for registry and distribution messages.
std::vector<std::uint8_t> serialize(const EncryptedVector& v);
EncryptedVector deserialize_encrypted_vector(std::span<const std::uint8_t> bytes);
/// Exact size of serialize() for a `slots`-long vector under `pk`, without
/// building the bytes — what exact channel accounting uses.
std::size_t serialized_size(const PublicKey& pk, std::size_t slots);

}  // namespace dubhe::he
