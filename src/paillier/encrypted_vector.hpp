#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "paillier/paillier.hpp"

namespace dubhe::he {

/// A vector of Paillier ciphertexts with slot-wise homomorphic addition.
/// This is the wire format of Dubhe's *registry* and of the encrypted label
/// distributions exchanged during multi-time selection: each slot holds one
/// counter (registry category count, or a fixed-point label share).
class EncryptedVector {
 public:
  EncryptedVector() = default;
  EncryptedVector(PublicKey pk, std::vector<Ciphertext> slots);

  /// Encrypts each value into its own ciphertext slot.
  static EncryptedVector encrypt(const PublicKey& pk,
                                 std::span<const std::uint64_t> values,
                                 bigint::EntropySource& rng);
  /// All-zeros encrypted vector (deterministic encryptions of 0, suitable
  /// as the identity for += aggregation on the server).
  static EncryptedVector zeros(const PublicKey& pk, std::size_t size);

  /// Slot-wise homomorphic addition. Throws std::invalid_argument on size or
  /// key mismatch.
  EncryptedVector& operator+=(const EncryptedVector& o);
  friend EncryptedVector operator+(EncryptedVector a, const EncryptedVector& b) {
    a += b;
    return a;
  }

  /// Decrypts every slot. Slot sums must stay below n (always true for the
  /// counters Dubhe transports).
  [[nodiscard]] std::vector<std::uint64_t> decrypt(const PrivateKey& prv) const;

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] const PublicKey& public_key() const { return pk_; }
  [[nodiscard]] const std::vector<Ciphertext>& slots() const { return slots_; }

  /// Exact serialized size in bytes (what the FL channel counts).
  [[nodiscard]] std::size_t byte_size() const;
  [[nodiscard]] std::vector<std::uint8_t> serialize_bytes() const;

 private:
  PublicKey pk_;
  std::vector<Ciphertext> slots_;
};

}  // namespace dubhe::he
