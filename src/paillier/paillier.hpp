#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bigint/biguint.hpp"
#include "bigint/montgomery.hpp"
#include "bigint/random.hpp"

namespace dubhe::he {

using bigint::BigUint;

/// A Paillier ciphertext: an element of Z*_{n^2}. Value semantics; the
/// ciphertext carries no key material, so all homomorphic operations live on
/// PublicKey, which owns the cached Montgomery context for n^2.
struct Ciphertext {
  BigUint c;

  bool operator==(const Ciphertext&) const = default;
};

/// Options for the batch APIs. `threads` caps the shards handed to the
/// shared core::ParallelRuntime: 1 (the default) runs serially on the
/// caller, 0 uses every pool worker. Batch results are byte-identical for
/// any thread count — each item draws from its own independently seeded
/// RNG stream (an explicit per-item seed, or bigint::derive_seed of a
/// batch seed), never from a shared one.
struct BatchOptions {
  std::size_t threads = 1;
};

/// Paillier public key with g = n + 1 (the standard "simple variant", also
/// what python-paillier uses). With this generator, encryption needs no
/// exponentiation for the message part: g^m = 1 + m*n (mod n^2).
class PublicKey {
 public:
  PublicKey() = default;
  explicit PublicKey(BigUint n);

  [[nodiscard]] const BigUint& n() const { return n_; }
  [[nodiscard]] const BigUint& n_squared() const { return n_sq_; }
  /// Modulus size in bits (the "key size": 2048 in the paper's setup).
  [[nodiscard]] std::size_t key_bits() const { return n_.bit_length(); }
  /// Exact serialized size of one ciphertext in bytes: ceil(2*key_bits/8).
  [[nodiscard]] std::size_t ciphertext_bytes() const;
  /// Exact serialized size of one plaintext in bytes: ceil(key_bits/8).
  [[nodiscard]] std::size_t plaintext_bytes() const;

  /// Encrypts m in [0, n). Throws std::out_of_range otherwise.
  /// c = (1 + m*n) * r^n mod n^2 with r uniform in Z*_n.
  [[nodiscard]] Ciphertext encrypt(const BigUint& m, bigint::EntropySource& rng) const;
  /// Deterministic "encryption" with r = 1 — NOT semantically secure; used
  /// only in tests and to build homomorphic constants cheaply.
  [[nodiscard]] Ciphertext encrypt_deterministic(const BigUint& m) const;

  /// Homomorphic addition: Dec(add(a, b)) = Dec(a) + Dec(b) mod n.
  [[nodiscard]] Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  /// Adds a plaintext constant: Dec(add_plain(a, m)) = Dec(a) + m mod n.
  [[nodiscard]] Ciphertext add_plain(const Ciphertext& a, const BigUint& m) const;
  /// Scalar multiplication: Dec(mul_plain(a, k)) = k * Dec(a) mod n.
  [[nodiscard]] Ciphertext mul_plain(const Ciphertext& a, const BigUint& k) const;
  /// Re-randomizes a ciphertext (multiplies by a fresh encryption of zero),
  /// unlinking it from its origin without changing the plaintext.
  [[nodiscard]] Ciphertext rerandomize(const Ciphertext& a, bigint::EntropySource& rng) const;

  /// Precomputes the fixed-base noise table (DJN-style shortcut): samples a
  /// unit h of Z*_{n^2}, fixes h_n = h^n mod n^2, and builds a
  /// bigint::FixedBaseTable for h_n. Afterwards encrypt/rerandomize obtain
  /// their noise as h_n^x for a fresh `noise_bits`-bit x — one table lookup
  /// product per 4 exponent bits, no squarings — instead of computing r^n
  /// from scratch (~5x faster at the paper's 2048-bit keys). The noise then
  /// ranges over the cyclic subgroup <h^n> rather than all n-th residues,
  /// the standard Damgård–Jurik–Nielsen trade (computationally, not
  /// statistically, indistinguishable randomization). noise_bits == 0 picks
  /// key_bits / 2. The table is never serialized; re-enable it after
  /// deserialize_public_key if wanted.
  void precompute_noise(bigint::EntropySource& rng, std::size_t noise_bits = 0);
  [[nodiscard]] bool has_noise_table() const { return noise_table_ != nullptr; }

  /// Per-item RNG stream state for the batch APIs: a full 256-bit
  /// xoshiro256** state, so each item's randomization carries the caller's
  /// entropy at the generator's native width (no 64-bit bottleneck).
  using StreamState = std::array<std::uint64_t, 4>;

  /// Batch encryption: one ciphertext per message, item i randomized from
  /// its own stream seeded with states[i] (states.size() must equal
  /// ms.size(); throws std::invalid_argument otherwise). See BatchOptions
  /// for the thread-count-invariance contract.
  [[nodiscard]] std::vector<Ciphertext> encrypt_batch(
      std::span<const BigUint> ms, std::span<const StreamState> states,
      const BatchOptions& opt = {}) const;
  /// Reproducibility convenience: seeds item i's stream with
  /// bigint::derive_seed(seed, i) — here the whole batch is deliberately a
  /// function of one 64-bit seed (the experiment stack's seeded-
  /// reproducibility contract). Deployments encrypting under real entropy
  /// should use the StreamState overload (what EncryptedVector::encrypt
  /// does) or per-item encrypt().
  [[nodiscard]] std::vector<Ciphertext> encrypt_batch(
      std::span<const BigUint> ms, std::uint64_t seed,
      const BatchOptions& opt = {}) const;
  /// Batch re-randomization with the same per-item stream derivation.
  [[nodiscard]] std::vector<Ciphertext> rerandomize_batch(
      std::span<const Ciphertext> cts, std::uint64_t seed,
      const BatchOptions& opt = {}) const;

  bool operator==(const PublicKey& o) const { return n_ == o.n_; }

 private:
  BigUint n_;
  BigUint n_sq_;
  std::shared_ptr<const bigint::Montgomery> mont_n2_;
  /// Fixed-base table for h^n (shared across copies of the key; a PublicKey
  /// copy is cheap even with the table enabled).
  std::shared_ptr<const bigint::FixedBaseTable> noise_table_;
  std::size_t noise_bits_ = 0;
};

/// Paillier private key. Decryption uses the CRT over p^2 and q^2, which is
/// ~4x faster than the textbook lambda/mu route; the textbook route is kept
/// as decrypt_textbook() and cross-checked in tests.
class PrivateKey {
 public:
  PrivateKey() = default;
  /// Builds the key from the two primes. Throws std::invalid_argument if
  /// p == q or either is not odd.
  PrivateKey(const BigUint& p, const BigUint& q);

  [[nodiscard]] const PublicKey& public_key() const { return pub_; }
  [[nodiscard]] const BigUint& p() const { return p_; }
  [[nodiscard]] const BigUint& q() const { return q_; }

  /// CRT decryption.
  [[nodiscard]] BigUint decrypt(const Ciphertext& ct) const;
  /// Batch CRT decryption over the shared runtime. Deterministic for any
  /// thread count (decryption consumes no randomness).
  [[nodiscard]] std::vector<BigUint> decrypt_batch(std::span<const Ciphertext> cts,
                                                   const BatchOptions& opt = {}) const;
  /// Textbook decryption: L(c^lambda mod n^2) * mu mod n.
  [[nodiscard]] BigUint decrypt_textbook(const Ciphertext& ct) const;

 private:
  [[nodiscard]] static BigUint l_function(const BigUint& x, const BigUint& d);

  PublicKey pub_;
  BigUint p_, q_;
  BigUint p_sq_, q_sq_;
  BigUint hp_, hq_;      // CRT decryption helpers
  BigUint q_inv_p_;      // q^{-1} mod p, for CRT recombination
  BigUint lambda_, mu_;  // textbook route
  std::shared_ptr<const bigint::Montgomery> mont_p2_, mont_q2_;
};

/// Key pair generation parameters and result.
struct Keypair {
  PublicKey pub;
  PrivateKey prv;

  /// Generates a key with an exactly `key_bits`-bit modulus n = p*q
  /// (p, q random primes of key_bits/2 bits). The paper's configuration is
  /// key_bits = 2048.
  static Keypair generate(bigint::EntropySource& rng, std::size_t key_bits);
};

/// Serialization — length-prefixed big-endian magnitudes. These byte layouts
/// are what the FL channel layer counts when reporting communication volume.
/// Key material framing: a 1-byte tag ('P' public / 'S' secret) followed by
/// length-prefixed components (n for public keys; p then q for private
/// keys — everything else is recomputed on load).
std::vector<std::uint8_t> serialize(const Ciphertext& ct, const PublicKey& pk);
Ciphertext deserialize_ciphertext(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> serialize(const PublicKey& pk);
PublicKey deserialize_public_key(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> serialize(const PrivateKey& prv);
PrivateKey deserialize_private_key(std::span<const std::uint8_t> bytes);

/// Advancing variants for keys embedded inside larger payloads (the
/// encrypted-vector wire forms, net key-material frames): parse the key at
/// the front of `bytes` and move the span past its canonical encoding, so
/// callers never re-measure the field layout themselves.
PublicKey deserialize_public_key_prefix(std::span<const std::uint8_t>& bytes);
PrivateKey deserialize_private_key_prefix(std::span<const std::uint8_t>& bytes);

/// Exact byte counts of serialize() for key material, without building the
/// bytes — the basis of the exact channel accounting.
std::size_t serialized_size(const PublicKey& pk);
std::size_t serialized_size(const PrivateKey& prv);

}  // namespace dubhe::he
