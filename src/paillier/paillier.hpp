#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/biguint.hpp"
#include "bigint/montgomery.hpp"
#include "bigint/random.hpp"

namespace dubhe::he {

using bigint::BigUint;

/// A Paillier ciphertext: an element of Z*_{n^2}. Value semantics; the
/// ciphertext carries no key material, so all homomorphic operations live on
/// PublicKey, which owns the cached Montgomery context for n^2.
struct Ciphertext {
  BigUint c;

  bool operator==(const Ciphertext&) const = default;
};

/// Paillier public key with g = n + 1 (the standard "simple variant", also
/// what python-paillier uses). With this generator, encryption needs no
/// exponentiation for the message part: g^m = 1 + m*n (mod n^2).
class PublicKey {
 public:
  PublicKey() = default;
  explicit PublicKey(BigUint n);

  [[nodiscard]] const BigUint& n() const { return n_; }
  [[nodiscard]] const BigUint& n_squared() const { return n_sq_; }
  /// Modulus size in bits (the "key size": 2048 in the paper's setup).
  [[nodiscard]] std::size_t key_bits() const { return n_.bit_length(); }
  /// Exact serialized size of one ciphertext in bytes: ceil(2*key_bits/8).
  [[nodiscard]] std::size_t ciphertext_bytes() const;
  /// Exact serialized size of one plaintext in bytes: ceil(key_bits/8).
  [[nodiscard]] std::size_t plaintext_bytes() const;

  /// Encrypts m in [0, n). Throws std::out_of_range otherwise.
  /// c = (1 + m*n) * r^n mod n^2 with r uniform in Z*_n.
  [[nodiscard]] Ciphertext encrypt(const BigUint& m, bigint::EntropySource& rng) const;
  /// Deterministic "encryption" with r = 1 — NOT semantically secure; used
  /// only in tests and to build homomorphic constants cheaply.
  [[nodiscard]] Ciphertext encrypt_deterministic(const BigUint& m) const;

  /// Homomorphic addition: Dec(add(a, b)) = Dec(a) + Dec(b) mod n.
  [[nodiscard]] Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
  /// Adds a plaintext constant: Dec(add_plain(a, m)) = Dec(a) + m mod n.
  [[nodiscard]] Ciphertext add_plain(const Ciphertext& a, const BigUint& m) const;
  /// Scalar multiplication: Dec(mul_plain(a, k)) = k * Dec(a) mod n.
  [[nodiscard]] Ciphertext mul_plain(const Ciphertext& a, const BigUint& k) const;
  /// Re-randomizes a ciphertext (multiplies by a fresh encryption of zero),
  /// unlinking it from its origin without changing the plaintext.
  [[nodiscard]] Ciphertext rerandomize(const Ciphertext& a, bigint::EntropySource& rng) const;

  bool operator==(const PublicKey& o) const { return n_ == o.n_; }

 private:
  BigUint n_;
  BigUint n_sq_;
  std::shared_ptr<const bigint::Montgomery> mont_n2_;
};

/// Paillier private key. Decryption uses the CRT over p^2 and q^2, which is
/// ~4x faster than the textbook lambda/mu route; the textbook route is kept
/// as decrypt_textbook() and cross-checked in tests.
class PrivateKey {
 public:
  PrivateKey() = default;
  /// Builds the key from the two primes. Throws std::invalid_argument if
  /// p == q or either is not odd.
  PrivateKey(const BigUint& p, const BigUint& q);

  [[nodiscard]] const PublicKey& public_key() const { return pub_; }
  [[nodiscard]] const BigUint& p() const { return p_; }
  [[nodiscard]] const BigUint& q() const { return q_; }

  /// CRT decryption.
  [[nodiscard]] BigUint decrypt(const Ciphertext& ct) const;
  /// Textbook decryption: L(c^lambda mod n^2) * mu mod n.
  [[nodiscard]] BigUint decrypt_textbook(const Ciphertext& ct) const;

 private:
  [[nodiscard]] static BigUint l_function(const BigUint& x, const BigUint& d);

  PublicKey pub_;
  BigUint p_, q_;
  BigUint p_sq_, q_sq_;
  BigUint hp_, hq_;      // CRT decryption helpers
  BigUint q_inv_p_;      // q^{-1} mod p, for CRT recombination
  BigUint lambda_, mu_;  // textbook route
  std::shared_ptr<const bigint::Montgomery> mont_p2_, mont_q2_;
};

/// Key pair generation parameters and result.
struct Keypair {
  PublicKey pub;
  PrivateKey prv;

  /// Generates a key with an exactly `key_bits`-bit modulus n = p*q
  /// (p, q random primes of key_bits/2 bits). The paper's configuration is
  /// key_bits = 2048.
  static Keypair generate(bigint::EntropySource& rng, std::size_t key_bits);
};

/// Serialization — length-prefixed big-endian magnitudes. These byte layouts
/// are what the FL channel layer counts when reporting communication volume.
/// Key material framing: a 1-byte tag ('P' public / 'S' secret) followed by
/// length-prefixed components (n for public keys; p then q for private
/// keys — everything else is recomputed on load).
std::vector<std::uint8_t> serialize(const Ciphertext& ct, const PublicKey& pk);
Ciphertext deserialize_ciphertext(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> serialize(const PublicKey& pk);
PublicKey deserialize_public_key(std::span<const std::uint8_t> bytes);
std::vector<std::uint8_t> serialize(const PrivateKey& prv);
PrivateKey deserialize_private_key(std::span<const std::uint8_t> bytes);

}  // namespace dubhe::he
