#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace dubhe::he::detail {

/// Big-endian u32 field helpers shared by the paillier wire forms
/// (encrypted_vector.cpp, packing.cpp). The net layer keeps its own
/// writer/reader on purpose: its failures are typed WireErrors, this
/// layer's are std::invalid_argument.

inline void put_u32_be(std::vector<std::uint8_t>& out, std::size_t v,
                       const char* what) {
  if (v > std::size_t{0xFFFFFFFF}) {
    throw std::invalid_argument(std::string(what) + ": field exceeds u32");
  }
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Reads the u32 at the front of `bytes` and advances past it.
inline std::size_t get_u32_be(std::span<const std::uint8_t>& bytes, const char* what) {
  if (bytes.size() < 4) {
    throw std::invalid_argument(std::string(what) + ": truncated field");
  }
  const std::size_t v = (static_cast<std::size_t>(bytes[0]) << 24) |
                        (static_cast<std::size_t>(bytes[1]) << 16) |
                        (static_cast<std::size_t>(bytes[2]) << 8) |
                        static_cast<std::size_t>(bytes[3]);
  bytes = bytes.subspan(4);
  return v;
}

}  // namespace dubhe::he::detail
