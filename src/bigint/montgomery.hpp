#pragma once

#include <cstdint>
#include <vector>

#include "bigint/biguint.hpp"

namespace dubhe::bigint {

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Implements the CIOS (coarsely integrated operand scanning) method with
/// 64-bit limbs. A context precomputes `R^2 mod N` (for R = 2^(64 s)) and
/// `-N^{-1} mod 2^64` once, after which modular multiplications cost one
/// pass over the operand limbs with no long division. `pow` uses a fixed
/// 4-bit window over preallocated limb buffers — the hot loop performs no
/// heap allocation — which is the sweet spot for the 2048/4096-bit
/// exponents Paillier needs.
class Montgomery {
 public:
  /// Throws std::invalid_argument if `modulus` is even or zero.
  explicit Montgomery(const BigUint& modulus);

  [[nodiscard]] const BigUint& modulus() const { return n_; }

  /// x * R mod N (into Montgomery form). x must be < N.
  [[nodiscard]] BigUint to_mont(const BigUint& x) const;
  /// x * R^{-1} mod N (out of Montgomery form).
  [[nodiscard]] BigUint from_mont(const BigUint& x) const;
  /// Montgomery product: a * b * R^{-1} mod N, operands in Montgomery form.
  [[nodiscard]] BigUint mul(const BigUint& a, const BigUint& b) const;
  /// base^exp mod N for plain (non-Montgomery) base, result plain.
  [[nodiscard]] BigUint pow(const BigUint& base, const BigUint& exp) const;

 private:
  using Limb = BigUint::Limb;

  /// Raw CIOS kernel over limb vectors of length s_ (inputs zero-padded).
  /// `out` (length s_) must not alias `a` or `b`; `t` is caller-provided
  /// scratch of length s_ + 2 so the pow loop can reuse one buffer.
  void cios(const Limb* a, const Limb* b, Limb* out, Limb* t) const;
  [[nodiscard]] std::vector<Limb> padded(const BigUint& x) const;
  [[nodiscard]] static BigUint from_limbs(std::vector<Limb> v);

  BigUint n_;
  std::vector<Limb> n_limbs_;  // modulus, padded to s_
  std::size_t s_ = 0;          // limb count of the modulus
  Limb n0inv_ = 0;             // -N^{-1} mod 2^64
  BigUint rr_;                 // R^2 mod N
  BigUint one_mont_;           // R mod N (1 in Montgomery form)
};

}  // namespace dubhe::bigint
