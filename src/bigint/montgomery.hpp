#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/biguint.hpp"

namespace dubhe::bigint {

class FixedBaseTable;

/// Montgomery multiplication context for a fixed odd modulus.
///
/// Implements the CIOS (coarsely integrated operand scanning) method with
/// 64-bit limbs. A context precomputes `R^2 mod N` (for R = 2^(64 s)) and
/// `-N^{-1} mod 2^64` once, after which modular multiplications cost one
/// pass over the operand limbs with no long division. DUBHE_SIMD builds
/// run the kernel's inner loops 2-way unrolled (bit-identical limbs — the
/// carry chain is sequential, only loop overhead goes away). `pow` uses a
/// fixed 4-bit window over preallocated limb buffers — the hot loop
/// performs no heap allocation — which is the sweet spot for the
/// 2048/4096-bit exponents Paillier needs.
class Montgomery {
 public:
  /// Throws std::invalid_argument if `modulus` is even or zero.
  explicit Montgomery(const BigUint& modulus);

  [[nodiscard]] const BigUint& modulus() const { return n_; }

  /// x * R mod N (into Montgomery form). x must be < N.
  [[nodiscard]] BigUint to_mont(const BigUint& x) const;
  /// x * R^{-1} mod N (out of Montgomery form).
  [[nodiscard]] BigUint from_mont(const BigUint& x) const;
  /// Montgomery product: a * b * R^{-1} mod N, operands in Montgomery form.
  [[nodiscard]] BigUint mul(const BigUint& a, const BigUint& b) const;
  /// base^exp mod N for plain (non-Montgomery) base, result plain.
  [[nodiscard]] BigUint pow(const BigUint& base, const BigUint& exp) const;

 private:
  friend class FixedBaseTable;
  using Limb = BigUint::Limb;

  /// Raw CIOS kernel over limb vectors of length s_ (inputs zero-padded).
  /// `out` (length s_) must not alias `a` or `b`; `t` is caller-provided
  /// scratch of length s_ + 2 so the pow loop can reuse one buffer.
  void cios(const Limb* a, const Limb* b, Limb* out, Limb* t) const;
  [[nodiscard]] std::vector<Limb> padded(const BigUint& x) const;
  [[nodiscard]] static BigUint from_limbs(std::vector<Limb> v);
  /// x into Montgomery form, written to `out` (length s_); `t` is cios
  /// scratch of length s_ + 2.
  void to_mont_limbs(const BigUint& x, Limb* out, Limb* t) const;
  /// Montgomery-form `acc` (length s_) out of Montgomery form, clobbering
  /// `tmp` (length s_); `t` is cios scratch.
  [[nodiscard]] BigUint from_mont_limbs(const std::vector<Limb>& acc,
                                        std::vector<Limb>& tmp,
                                        std::vector<Limb>& t) const;
  /// 4-bit window digit of `exp` at window w (bits [4w, 4w+4)).
  [[nodiscard]] static unsigned window4(const BigUint& exp, std::size_t w);

  BigUint n_;
  std::vector<Limb> n_limbs_;  // modulus, padded to s_
  std::size_t s_ = 0;          // limb count of the modulus
  Limb n0inv_ = 0;             // -N^{-1} mod 2^64
  BigUint rr_;                 // R^2 mod N
  BigUint one_mont_;           // R mod N (1 in Montgomery form)
};

/// Fixed-base exponentiation table (radix-2^4 comb). Precomputes
/// base^(d * 16^w) in Montgomery form for every 4-bit window w up to
/// `max_exp_bits` and every digit d in [1, 15], after which pow(exp) is a
/// product of one table entry per non-zero exponent window — no squarings
/// and no per-call table build, ~5x fewer kernel calls than Montgomery::pow
/// for 2048-bit exponents. Build cost is ~18 multiplications per window and
/// the table stores 15 entries per window (15 * ceil(bits/4) * limb_count
/// words), so this pays off when the same base is raised to many exponents:
/// the Paillier noise term h^x reuses one table per key across every
/// encrypt/rerandomize call.
class FixedBaseTable {
 public:
  /// Builds the table for exponents up to `max_exp_bits` bits. Throws
  /// std::invalid_argument on a null context or zero width.
  FixedBaseTable(std::shared_ptr<const Montgomery> ctx, const BigUint& base,
                 std::size_t max_exp_bits);

  [[nodiscard]] const Montgomery& context() const { return *ctx_; }
  [[nodiscard]] std::size_t max_exp_bits() const { return max_exp_bits_; }

  /// base^exp mod N — bit-identical to Montgomery::pow(base, exp). Throws
  /// std::out_of_range if exp.bit_length() > max_exp_bits().
  [[nodiscard]] BigUint pow(const BigUint& exp) const;

 private:
  using Limb = BigUint::Limb;
  static constexpr std::size_t kWindowBits = 4;

  [[nodiscard]] const Limb* entry(std::size_t window, unsigned digit) const {
    return entries_.data() + (window * 15 + (digit - 1)) * s_;
  }

  std::shared_ptr<const Montgomery> ctx_;
  std::size_t max_exp_bits_ = 0;
  std::size_t s_ = 0;           // limbs per entry (= modulus limb count)
  std::vector<Limb> entries_;   // [window][digit-1][limb], Montgomery form
};

}  // namespace dubhe::bigint
