#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "bigint/biguint.hpp"

namespace dubhe::bigint {

/// Arbitrary-precision signed integer: sign-and-magnitude over BigUint.
/// Division truncates toward zero and the remainder takes the dividend's
/// sign (C++ semantics). Zero is always non-negative (no negative zero).
///
/// The Paillier layer itself only needs unsigned arithmetic; BigInt exists
/// for the places where signed intermediates are the natural formulation —
/// notably the extended Euclidean algorithm (Bezout coefficients) used for
/// modular inverses, exposed below as extended_gcd().
class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor)
  /// From magnitude and sign; a zero magnitude ignores `negative`.
  BigInt(BigUint magnitude, bool negative);
  /// Non-negative value from a BigUint.
  BigInt(BigUint magnitude);  // NOLINT(google-explicit-constructor)

  /// Parses optional leading '-' followed by decimal digits.
  static BigInt from_dec(std::string_view s);

  [[nodiscard]] bool is_zero() const { return mag_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return neg_; }
  [[nodiscard]] const BigUint& magnitude() const { return mag_; }
  /// |x| as a signed value.
  [[nodiscard]] BigInt abs() const { return BigInt(mag_, false); }
  /// Truncating conversion; sign applied to the low 64 bits of |x|.
  [[nodiscard]] std::int64_t to_i64() const;
  [[nodiscard]] std::string to_dec() const;

  [[nodiscard]] BigInt operator-() const { return BigInt(mag_, !neg_); }

  BigInt& operator+=(const BigInt& o);
  BigInt& operator-=(const BigInt& o) { return *this += -o; }
  BigInt& operator*=(const BigInt& o);

  friend BigInt operator+(BigInt a, const BigInt& b) { a += b; return a; }
  friend BigInt operator-(BigInt a, const BigInt& b) { a -= b; return a; }
  friend BigInt operator*(BigInt a, const BigInt& b) { a *= b; return a; }

  /// Truncated division: quotient rounds toward zero, remainder has the
  /// dividend's sign and |r| < |b|. Throws std::domain_error on b == 0.
  static void divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r);
  friend BigInt operator/(const BigInt& a, const BigInt& b) {
    BigInt q, r;
    divmod(a, b, q, r);
    return q;
  }
  friend BigInt operator%(const BigInt& a, const BigInt& b) {
    BigInt q, r;
    divmod(a, b, q, r);
    return r;
  }

  /// Euclidean (non-negative) remainder mod m > 0: result in [0, m).
  [[nodiscard]] BigUint mod_floor(const BigUint& m) const;

  std::strong_ordering operator<=>(const BigInt& o) const;
  bool operator==(const BigInt& o) const { return neg_ == o.neg_ && mag_ == o.mag_; }

 private:
  void normalize() {
    if (mag_.is_zero()) neg_ = false;
  }

  BigUint mag_;
  bool neg_ = false;
};

/// Bezout decomposition g = gcd(a, b) = a*x + b*y.
struct ExtendedGcd {
  BigUint g;
  BigInt x;
  BigInt y;
};

/// Extended Euclidean algorithm over non-negative inputs (signed Bezout
/// coefficients). extended_gcd(0, 0) has g = 0, x = y = 0.
ExtendedGcd extended_gcd(const BigUint& a, const BigUint& b);

}  // namespace dubhe::bigint
