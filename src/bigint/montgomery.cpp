#include "bigint/montgomery.hpp"

#include <array>
#include <stdexcept>

namespace dubhe::bigint {

namespace {

/// Inverse of odd `x` mod 2^32 by Newton iteration (5 steps double precision
/// each time: 2 -> 4 -> 8 -> 16 -> 32 correct low bits).
std::uint32_t inv32(std::uint32_t x) {
  std::uint32_t y = x;  // correct to 3 bits for odd x
  for (int i = 0; i < 5; ++i) y *= 2u - x * y;
  return y;
}

}  // namespace

Montgomery::Montgomery(const BigUint& modulus) : n_(modulus) {
  if (n_.is_zero() || !n_.is_odd()) {
    throw std::invalid_argument("Montgomery: modulus must be odd and non-zero");
  }
  s_ = n_.limb_count();
  n_limbs_.resize(s_);
  for (std::size_t i = 0; i < s_; ++i) n_limbs_[i] = n_.limb(i);
  n0inv_ = static_cast<Limb>(0u - inv32(n_limbs_[0]));

  // R = 2^(32 s); compute R mod N and R^2 mod N with plain division once.
  const BigUint r = BigUint::pow2(32 * s_) % n_;
  one_mont_ = r;
  rr_ = r.mul_mod(r, n_);
}

std::vector<Montgomery::Limb> Montgomery::padded(const BigUint& x) const {
  std::vector<Limb> v(s_, 0);
  for (std::size_t i = 0; i < s_; ++i) v[i] = x.limb(i);
  return v;
}

BigUint Montgomery::from_limbs(std::vector<Limb> v) {
  BigUint r;
  r.limbs_ = std::move(v);
  r.trim();
  return r;
}

void Montgomery::cios(const std::vector<Limb>& a, const std::vector<Limb>& b,
                      std::vector<Limb>& out) const {
  const std::size_t s = s_;
  std::vector<Wide> t(s + 2, 0);
  for (std::size_t i = 0; i < s; ++i) {
    // t += a * b[i]
    const Wide bi = b[i];
    Wide carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const Wide cur = t[j] + static_cast<Wide>(a[j]) * bi + carry;
      t[j] = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    Wide cur = t[s] + carry;
    t[s] = static_cast<Limb>(cur);
    t[s + 1] = cur >> 32;

    // Reduce: add m * N where m makes the low limb vanish, then shift.
    const Limb m = static_cast<Limb>(t[0]) * n0inv_;
    cur = t[0] + static_cast<Wide>(m) * n_limbs_[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < s; ++j) {
      cur = t[j] + static_cast<Wide>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    cur = t[s] + carry;
    t[s - 1] = static_cast<Limb>(cur);
    t[s] = t[s + 1] + (cur >> 32);
    t[s + 1] = 0;
  }
  out.assign(s + 1, 0);
  for (std::size_t i = 0; i <= s; ++i) out[i] = static_cast<Limb>(t[i]);
  // Conditional final subtraction: result < 2N, reduce to < N.
  bool ge = out[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = s; i-- > 0;) {
      if (out[i] != n_limbs_[i]) { ge = out[i] > n_limbs_[i]; break; }
    }
  }
  if (ge) {
    Wide borrow = 0;
    for (std::size_t i = 0; i < s; ++i) {
      const Wide sub = static_cast<Wide>(n_limbs_[i]) + borrow;
      if (out[i] >= sub) {
        out[i] = static_cast<Limb>(out[i] - sub);
        borrow = 0;
      } else {
        out[i] = static_cast<Limb>((Wide{1} << 32) + out[i] - sub);
        borrow = 1;
      }
    }
    out[s] = static_cast<Limb>(out[s] - borrow);
  }
  out.resize(s_);
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  std::vector<Limb> out;
  cios(padded(a), padded(b), out);
  return from_limbs(std::move(out));
}

BigUint Montgomery::to_mont(const BigUint& x) const {
  return mul(x, rr_);
}

BigUint Montgomery::from_mont(const BigUint& x) const {
  return mul(x, BigUint{1});
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  if (exp.is_zero()) return BigUint{1} % n_;
  const BigUint b = base % n_;
  const BigUint bm = to_mont(b);

  // Precompute bm^0 .. bm^15 for a fixed 4-bit window.
  std::array<BigUint, 16> table;
  table[0] = one_mont_;
  for (std::size_t i = 1; i < 16; ++i) table[i] = mul(table[i - 1], bm);

  const std::size_t nbits = exp.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  BigUint acc = one_mont_;
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int sq = 0; sq < 4; ++sq) acc = mul(acc, acc);
    unsigned idx = 0;
    for (int k = 3; k >= 0; --k) {
      idx = (idx << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(k)) ? 1u : 0u);
    }
    if (idx != 0) acc = mul(acc, table[idx]);
  }
  return from_mont(acc);
}

}  // namespace dubhe::bigint
