#include "bigint/montgomery.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace dubhe::bigint {

namespace {

/// Inverse of odd `x` mod 2^64 by Newton iteration. The seed y = x is
/// correct to 3 bits (x * x = 1 mod 8 for odd x) and each step doubles the
/// number of correct low bits: 3 -> 6 -> 12 -> 24 -> 48 -> 96 >= 64.
std::uint64_t inv64(std::uint64_t x) {
  std::uint64_t y = x;
  for (int i = 0; i < 5; ++i) y *= 2u - x * y;
  return y;
}

}  // namespace

Montgomery::Montgomery(const BigUint& modulus) : n_(modulus) {
  if (n_.is_zero() || !n_.is_odd()) {
    throw std::invalid_argument("Montgomery: modulus must be odd and non-zero");
  }
  s_ = n_.limb_count();
  n_limbs_.resize(s_);
  for (std::size_t i = 0; i < s_; ++i) n_limbs_[i] = n_.limb(i);
  n0inv_ = 0u - inv64(n_limbs_[0]);

  // R = 2^(64 s); compute R mod N and R^2 mod N with plain division once.
  const BigUint r = BigUint::pow2(kLimbBits * s_) % n_;
  one_mont_ = r;
  rr_ = r.mul_mod(r, n_);
}

std::vector<Montgomery::Limb> Montgomery::padded(const BigUint& x) const {
  std::vector<Limb> v(s_, 0);
  for (std::size_t i = 0; i < s_; ++i) v[i] = x.limb(i);
  return v;
}

BigUint Montgomery::from_limbs(std::vector<Limb> v) {
  BigUint r;
  r.limbs_ = std::move(v);
  r.trim();
  return r;
}

void Montgomery::cios(const Limb* a, const Limb* b, Limb* out, Limb* t) const {
  const std::size_t s = s_;
  const Limb* n = n_limbs_.data();
  for (std::size_t i = 0; i < s + 2; ++i) t[i] = 0;
  for (std::size_t i = 0; i < s; ++i) {
    // t += a * b[i]
    const Limb bi = b[i];
    Limb carry = 0;
    std::size_t j = 0;
#if defined(DUBHE_SIMD_ENABLED)
    // 2-way unrolled inner loops (DUBHE_SIMD builds). The carry chain is
    // strictly sequential, so unrolling only interleaves the independent
    // 64x64 multiplies and removes loop overhead — the operation order, and
    // therefore every limb produced, is bit-identical to the rolled loop.
    for (; j + 2 <= s; j += 2) {
      t[j] = mac(t[j], a[j], bi, carry);
      t[j + 1] = mac(t[j + 1], a[j + 1], bi, carry);
    }
#endif
    for (; j < s; ++j) {
      t[j] = mac(t[j], a[j], bi, carry);
    }
    Limb c2 = 0;
    t[s] = addc(t[s], carry, c2);
    t[s + 1] += c2;

    // Reduce: add m * N where m makes the low limb vanish, then shift.
    const Limb m = t[0] * n0inv_;
    carry = 0;
    (void)mac(t[0], m, n[0], carry);  // low limb is zero by construction
    j = 1;
#if defined(DUBHE_SIMD_ENABLED)
    for (; j + 2 <= s; j += 2) {
      t[j - 1] = mac(t[j], m, n[j], carry);
      t[j] = mac(t[j + 1], m, n[j + 1], carry);
    }
#endif
    for (; j < s; ++j) {
      t[j - 1] = mac(t[j], m, n[j], carry);
    }
    c2 = 0;
    t[s - 1] = addc(t[s], carry, c2);
    t[s] = t[s + 1] + c2;  // t fits s+1 limbs: the running value stays < 2N
    t[s + 1] = 0;
  }
  // Conditional final subtraction: result < 2N, reduce to < N.
  bool ge = t[s] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t i = s; i-- > 0;) {
      if (t[i] != n[i]) { ge = t[i] > n[i]; break; }
    }
  }
  if (ge) {
    Limb borrow = 0;
    for (std::size_t i = 0; i < s; ++i) {
      out[i] = subb(t[i], n[i], borrow);
    }
  } else {
    for (std::size_t i = 0; i < s; ++i) out[i] = t[i];
  }
}

BigUint Montgomery::mul(const BigUint& a, const BigUint& b) const {
  const std::vector<Limb> pa = padded(a), pb = padded(b);
  std::vector<Limb> out(s_), t(s_ + 2);
  cios(pa.data(), pb.data(), out.data(), t.data());
  return from_limbs(std::move(out));
}

BigUint Montgomery::to_mont(const BigUint& x) const {
  return mul(x, rr_);
}

BigUint Montgomery::from_mont(const BigUint& x) const {
  return mul(x, BigUint{1});
}

void Montgomery::to_mont_limbs(const BigUint& x, Limb* out, Limb* t) const {
  const std::vector<Limb> px = padded(x), prr = padded(rr_);
  cios(px.data(), prr.data(), out, t);
}

BigUint Montgomery::from_mont_limbs(const std::vector<Limb>& acc,
                                    std::vector<Limb>& tmp,
                                    std::vector<Limb>& t) const {
  // Out of Montgomery form: multiply by 1.
  std::vector<Limb> one(s_, 0);
  one[0] = 1;
  cios(acc.data(), one.data(), tmp.data(), t.data());
  return from_limbs(std::move(tmp));
}

unsigned Montgomery::window4(const BigUint& exp, std::size_t w) {
  unsigned idx = 0;
  for (int k = 3; k >= 0; --k) {
    idx = (idx << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(k)) ? 1u : 0u);
  }
  return idx;
}

BigUint Montgomery::pow(const BigUint& base, const BigUint& exp) const {
  if (exp.is_zero()) return BigUint{1} % n_;

  // All intermediates live in fixed-size limb buffers; the window table,
  // accumulator, and scratch are allocated once up front.
  std::vector<Limb> t(s_ + 2), tmp(s_);
  std::vector<Limb> bm(s_);
  to_mont_limbs(base % n_, bm.data(), t.data());

  // Precompute bm^0 .. bm^15 for a fixed 4-bit window.
  std::array<std::vector<Limb>, 16> table;
  table[0] = padded(one_mont_);
  for (std::size_t i = 1; i < 16; ++i) {
    table[i].resize(s_);
    cios(table[i - 1].data(), bm.data(), table[i].data(), t.data());
  }

  const std::size_t nbits = exp.bit_length();
  const std::size_t nwindows = (nbits + 3) / 4;
  std::vector<Limb> acc = padded(one_mont_);
  for (std::size_t w = nwindows; w-- > 0;) {
    for (int sq = 0; sq < 4; ++sq) {
      cios(acc.data(), acc.data(), tmp.data(), t.data());
      acc.swap(tmp);
    }
    const unsigned idx = window4(exp, w);
    if (idx != 0) {
      cios(acc.data(), table[idx].data(), tmp.data(), t.data());
      acc.swap(tmp);
    }
  }
  return from_mont_limbs(acc, tmp, t);
}

FixedBaseTable::FixedBaseTable(std::shared_ptr<const Montgomery> ctx,
                               const BigUint& base, std::size_t max_exp_bits)
    : ctx_(std::move(ctx)), max_exp_bits_(max_exp_bits) {
  if (!ctx_) throw std::invalid_argument("FixedBaseTable: null context");
  if (max_exp_bits == 0) {
    throw std::invalid_argument("FixedBaseTable: zero exponent width");
  }
  s_ = ctx_->s_;
  const std::size_t windows = (max_exp_bits + kWindowBits - 1) / kWindowBits;
  entries_.resize(windows * 15 * s_);

  std::vector<Limb> t(s_ + 2), tmp(s_);
  // bw = base^(16^w) in Montgomery form, starting from w = 0.
  std::vector<Limb> bw(s_);
  ctx_->to_mont_limbs(base % ctx_->n_, bw.data(), t.data());
  for (std::size_t w = 0; w < windows; ++w) {
    Limb* row = entries_.data() + w * 15 * s_;
    std::copy(bw.begin(), bw.end(), row);  // digit 1
    for (unsigned d = 2; d <= 15; ++d) {
      ctx_->cios(row + (d - 2) * s_, bw.data(), row + (d - 1) * s_, t.data());
    }
    if (w + 1 < windows) {
      for (int sq = 0; sq < 4; ++sq) {  // bw <- bw^16
        ctx_->cios(bw.data(), bw.data(), tmp.data(), t.data());
        bw.swap(tmp);
      }
    }
  }
}

BigUint FixedBaseTable::pow(const BigUint& exp) const {
  const std::size_t nbits = exp.bit_length();
  if (nbits > max_exp_bits_) {
    throw std::out_of_range("FixedBaseTable: exponent exceeds table width");
  }
  if (exp.is_zero()) return BigUint{1} % ctx_->n_;

  std::vector<Limb> t(s_ + 2), tmp(s_);
  std::vector<Limb> acc = ctx_->padded(ctx_->one_mont_);
  const std::size_t windows = (nbits + kWindowBits - 1) / kWindowBits;
  for (std::size_t w = 0; w < windows; ++w) {
    const unsigned idx = Montgomery::window4(exp, w);
    if (idx != 0) {
      ctx_->cios(acc.data(), entry(w, idx), tmp.data(), t.data());
      acc.swap(tmp);
    }
  }
  return ctx_->from_mont_limbs(acc, tmp, t);
}

}  // namespace dubhe::bigint
