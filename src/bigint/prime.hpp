#pragma once

#include <cstdint>
#include <span>

#include "bigint/biguint.hpp"
#include "bigint/random.hpp"

namespace dubhe::bigint {

/// First primes for trial division (2, 3, 5, ... up to a few thousand).
std::span<const std::uint32_t> small_primes();

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
/// Deterministically correct for n < 3,317,044,064,679,887,385,961,981 when
/// rounds >= 13 with random bases is replaced by the fixed-base variant; we
/// use random bases, so the error probability is <= 4^-rounds.
bool is_probable_prime(const BigUint& n, EntropySource& rng, int rounds = 24);

/// Uniform random probable prime with exactly `bits` significant bits.
/// Candidates get trial division by small_primes() — via the single-limb
/// BigUint::mod_u64 remainder, so no allocation per candidate — before
/// Miller–Rabin. Throws std::invalid_argument for bits < 2.
BigUint random_prime(EntropySource& rng, std::size_t bits, int mr_rounds = 24);

}  // namespace dubhe::bigint
