#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bigint/limb.hpp"

namespace dubhe::bigint {

/// Arbitrary-precision unsigned integer.
///
/// Storage is a little-endian vector of 64-bit limbs with the invariant that
/// the most significant limb is non-zero (zero is the empty vector). All
/// arithmetic goes through the double-width primitives in limb.hpp (native
/// 128-bit intermediates where the compiler has __int128, a portable 32-bit
/// synthesis otherwise); multiplication switches from schoolbook to Karatsuba
/// above `kKaratsubaThreshold` limbs and division is Knuth's Algorithm D.
/// This is the only integer type the Paillier layer builds on; it
/// deliberately has no dependency on GMP or any other library.
class BigUint {
 public:
  using Limb = bigint::Limb;
  static constexpr unsigned kLimbBits = bigint::kLimbBits;
  static constexpr std::size_t kKaratsubaThreshold = 24;  // limbs

  /// Zero.
  BigUint() = default;
  /// From a 64-bit value.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor)

  /// Parses a hexadecimal string (no prefix, case-insensitive). Throws
  /// std::invalid_argument on empty or non-hex input.
  static BigUint from_hex(std::string_view s);
  /// Parses a decimal string. Throws std::invalid_argument on bad input.
  static BigUint from_dec(std::string_view s);
  /// Big-endian byte import (leading zero bytes allowed).
  static BigUint from_bytes_be(std::span<const std::uint8_t> bytes);
  /// Little-endian 64-bit word import (trailing zero words allowed).
  static BigUint from_limbs_le(std::span<const std::uint64_t> words);
  /// 2^k.
  static BigUint pow2(std::size_t k);

  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  [[nodiscard]] bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  [[nodiscard]] bool is_one() const { return limbs_.size() == 1 && limbs_[0] == 1u; }
  /// Number of significant bits; 0 for zero.
  [[nodiscard]] std::size_t bit_length() const;
  /// Bit i (0 = least significant); false beyond bit_length().
  [[nodiscard]] bool bit(std::size_t i) const;
  /// Number of limbs in use.
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }
  /// Limb i, 0 beyond limb_count().
  [[nodiscard]] Limb limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0u;
  }
  /// Value as uint64, truncating to the low 64 bits.
  [[nodiscard]] std::uint64_t to_u64() const {
    return limbs_.empty() ? 0u : limbs_[0];
  }
  /// True if the value fits in 64 bits.
  [[nodiscard]] bool fits_u64() const { return limbs_.size() <= 1; }

  [[nodiscard]] std::string to_hex() const;
  [[nodiscard]] std::string to_dec() const;
  /// Big-endian byte export, minimal length (empty for zero) unless
  /// `pad_to` is larger, in which case the output is left-padded with zeros.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t pad_to = 0) const;

  std::strong_ordering operator<=>(const BigUint& o) const;
  bool operator==(const BigUint& o) const { return limbs_ == o.limbs_; }

  BigUint& operator+=(const BigUint& o);
  /// Subtraction; throws std::underflow_error if *this < o.
  BigUint& operator-=(const BigUint& o);
  BigUint& operator*=(const BigUint& o) { *this = *this * o; return *this; }
  BigUint& operator<<=(std::size_t bits);
  BigUint& operator>>=(std::size_t bits);

  friend BigUint operator+(BigUint a, const BigUint& b) { a += b; return a; }
  friend BigUint operator-(BigUint a, const BigUint& b) { a -= b; return a; }
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  friend BigUint operator<<(BigUint a, std::size_t bits) { a <<= bits; return a; }
  friend BigUint operator>>(BigUint a, std::size_t bits) { a >>= bits; return a; }

  /// Quotient+remainder in one pass (Knuth Algorithm D). Throws
  /// std::domain_error on division by zero.
  static void divmod(const BigUint& a, const BigUint& b, BigUint& q, BigUint& r);
  friend BigUint operator/(const BigUint& a, const BigUint& b) {
    BigUint q, r; divmod(a, b, q, r); return q;
  }
  friend BigUint operator%(const BigUint& a, const BigUint& b) {
    BigUint q, r; divmod(a, b, q, r); return r;
  }

  /// Remainder modulo a machine word (single limb pass, no allocation).
  /// Throws std::domain_error on d == 0.
  [[nodiscard]] std::uint64_t mod_u64(std::uint64_t d) const;

  /// (this + o) % m, assuming both inputs already reduced mod m.
  [[nodiscard]] BigUint add_mod(const BigUint& o, const BigUint& m) const;
  /// (this * o) % m.
  [[nodiscard]] BigUint mul_mod(const BigUint& o, const BigUint& m) const;
  /// this^e % m. Uses Montgomery exponentiation when m is odd, generic
  /// square-and-multiply otherwise. Throws std::domain_error if m == 0.
  [[nodiscard]] BigUint pow_mod(const BigUint& e, const BigUint& m) const;

  /// Greatest common divisor (Euclid).
  static BigUint gcd(BigUint a, BigUint b);
  /// Least common multiple; 0 if either argument is 0.
  static BigUint lcm(const BigUint& a, const BigUint& b);
  /// Modular inverse; throws std::domain_error if gcd(a, m) != 1 or m == 0.
  static BigUint mod_inverse(const BigUint& a, const BigUint& m);

 private:
  friend class Montgomery;
  void trim();
  static BigUint mul_schoolbook(const BigUint& a, const BigUint& b);
  static BigUint mul_karatsuba(const BigUint& a, const BigUint& b);
  /// Limbs [lo, hi) as a value (used by Karatsuba splitting).
  [[nodiscard]] BigUint slice_limbs(std::size_t lo, std::size_t hi) const;

  std::vector<Limb> limbs_;
};

}  // namespace dubhe::bigint
