#include "bigint/prime.hpp"

#include <stdexcept>
#include <vector>

#include "bigint/montgomery.hpp"

namespace dubhe::bigint {

namespace {

std::vector<std::uint32_t> sieve_up_to(std::uint32_t limit) {
  std::vector<bool> composite(limit + 1, false);
  std::vector<std::uint32_t> primes;
  for (std::uint32_t i = 2; i <= limit; ++i) {
    if (composite[i]) continue;
    primes.push_back(i);
    for (std::uint64_t j = static_cast<std::uint64_t>(i) * i; j <= limit; j += i) {
      composite[static_cast<std::size_t>(j)] = true;
    }
  }
  return primes;
}

}  // namespace

std::span<const std::uint32_t> small_primes() {
  static const std::vector<std::uint32_t> primes = sieve_up_to(8192);
  return primes;
}

bool is_probable_prime(const BigUint& n, EntropySource& rng, int rounds) {
  if (n < BigUint{2}) return false;
  // Trial division against the sieve via the single-word remainder fast
  // path — one limb pass per prime, no BigUint allocation. n can only
  // equal a sieve prime when it fits a single limb.
  const bool n_small = n.fits_u64();
  const std::uint64_t n64 = n.to_u64();
  for (const std::uint32_t p : small_primes()) {
    if (n_small && n64 == p) return true;
    if (n.mod_u64(p) == 0) return false;
  }
  // n is odd and > every small prime here. Write n - 1 = d * 2^r.
  const BigUint n_minus_1 = n - BigUint{1};
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d >>= 1;
    ++r;
  }
  const Montgomery ctx(n);
  const BigUint n_minus_3 = n - BigUint{3};
  for (int round = 0; round < rounds; ++round) {
    const BigUint a = random_below(rng, n_minus_3) + BigUint{2};  // [2, n-2]
    BigUint x = ctx.pow(a, d);
    if (x.is_one() || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = x.mul_mod(x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigUint random_prime(EntropySource& rng, std::size_t bits, int mr_rounds) {
  if (bits < 2) throw std::invalid_argument("random_prime: bits must be >= 2");
  for (;;) {
    BigUint candidate = random_exact_bits(rng, bits);
    if (!candidate.is_odd()) candidate += BigUint{1};
    if (candidate.bit_length() != bits) continue;  // the +1 overflowed
    if (is_probable_prime(candidate, rng, mr_rounds)) return candidate;
  }
}

}  // namespace dubhe::bigint
