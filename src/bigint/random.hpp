#pragma once

#include <array>
#include <cstdint>

#include "bigint/biguint.hpp"

namespace dubhe::bigint {

/// Source of random 64-bit words. The bigint/paillier layers are written
/// against this interface so experiments can run with a deterministic,
/// seedable generator while a deployment can plug in OS entropy.
class EntropySource {
 public:
  virtual ~EntropySource() = default;
  virtual std::uint64_t next_u64() = 0;
};

/// SplitMix64 — tiny, fast generator used for seeding and tests.
class SplitMix64 final : public EntropySource {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next_u64() override;

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the default deterministic generator for experiments.
/// Seeded from a single 64-bit value through SplitMix64 per the authors'
/// recommendation, or directly from a full 256-bit state (the batch
/// Paillier APIs seed per-item streams this way so each item carries the
/// caller's full entropy, not a 64-bit bottleneck).
class Xoshiro256ss final : public EntropySource {
 public:
  explicit Xoshiro256ss(std::uint64_t seed);
  /// Adopts `state` verbatim; the (invalid) all-zero state falls back to
  /// SplitMix64 seeding from 0.
  explicit Xoshiro256ss(const std::array<std::uint64_t, 4>& state);
  std::uint64_t next_u64() override;

  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Reads /dev/urandom. Throws std::runtime_error if unavailable.
class SystemEntropySource final : public EntropySource {
 public:
  std::uint64_t next_u64() override;
};

/// Derives an independent stream seed from a master seed (golden-ratio mix
/// through SplitMix64). The batch Paillier APIs seed stream k of a batch
/// with derive_seed(batch_seed, k), which is what makes their output
/// independent of thread count; stats::derive_seed forwards here so
/// client-level and slot-level streams share one convention.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream);

/// Uniform integer in [0, 2^bits). Consumes ceil(bits / 64) generator words;
/// the first word drawn becomes the most significant limb (excess high bits
/// are dropped from it). This mapping is part of the reproducibility
/// contract: seeded experiment streams depend on it.
BigUint random_bits(EntropySource& rng, std::size_t bits);
/// Uniform integer with exactly `bits` significant bits (top bit forced).
BigUint random_exact_bits(EntropySource& rng, std::size_t bits);
/// Uniform integer in [0, n) by rejection sampling. Throws on n == 0.
BigUint random_below(EntropySource& rng, const BigUint& n);

}  // namespace dubhe::bigint
