#include "bigint/bigint.hpp"

#include <stdexcept>

namespace dubhe::bigint {

BigInt::BigInt(std::int64_t v)
    : mag_(v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1 : static_cast<std::uint64_t>(v)),
      neg_(v < 0) {}

BigInt::BigInt(BigUint magnitude, bool negative)
    : mag_(std::move(magnitude)), neg_(negative) {
  normalize();
}

BigInt::BigInt(BigUint magnitude) : mag_(std::move(magnitude)), neg_(false) {}

BigInt BigInt::from_dec(std::string_view s) {
  if (!s.empty() && s.front() == '-') {
    return BigInt(BigUint::from_dec(s.substr(1)), true);
  }
  return BigInt(BigUint::from_dec(s), false);
}

std::int64_t BigInt::to_i64() const {
  const auto low = static_cast<std::int64_t>(mag_.to_u64() & 0x7FFFFFFFFFFFFFFFULL);
  return neg_ ? -low : low;
}

std::string BigInt::to_dec() const {
  return neg_ ? "-" + mag_.to_dec() : mag_.to_dec();
}

BigInt& BigInt::operator+=(const BigInt& o) {
  if (neg_ == o.neg_) {
    mag_ += o.mag_;
  } else if (mag_ >= o.mag_) {
    mag_ -= o.mag_;
  } else {
    mag_ = o.mag_ - mag_;
    neg_ = o.neg_;
  }
  normalize();
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& o) {
  mag_ *= o.mag_;
  neg_ = neg_ != o.neg_;
  normalize();
  return *this;
}

void BigInt::divmod(const BigInt& a, const BigInt& b, BigInt& q, BigInt& r) {
  BigUint uq, ur;
  BigUint::divmod(a.mag_, b.mag_, uq, ur);  // throws on b == 0
  q = BigInt(std::move(uq), a.neg_ != b.neg_);
  r = BigInt(std::move(ur), a.neg_);
}

BigUint BigInt::mod_floor(const BigUint& m) const {
  if (m.is_zero()) throw std::domain_error("BigInt::mod_floor: zero modulus");
  BigUint rem = mag_ % m;
  if (neg_ && !rem.is_zero()) rem = m - rem;
  return rem;
}

std::strong_ordering BigInt::operator<=>(const BigInt& o) const {
  if (neg_ != o.neg_) {
    return neg_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const auto mag_order = mag_ <=> o.mag_;
  if (!neg_) return mag_order;
  if (mag_order == std::strong_ordering::less) return std::strong_ordering::greater;
  if (mag_order == std::strong_ordering::greater) return std::strong_ordering::less;
  return std::strong_ordering::equal;
}

ExtendedGcd extended_gcd(const BigUint& a, const BigUint& b) {
  // Iterative: maintain r0 = a*x0 + b*y0 and r1 = a*x1 + b*y1.
  BigInt x0{1}, y0{0}, x1{0}, y1{1};
  BigUint r0 = a, r1 = b;
  while (!r1.is_zero()) {
    BigUint q, rem;
    BigUint::divmod(r0, r1, q, rem);
    const BigInt qs{q};
    BigInt x2 = x0 - qs * x1;
    BigInt y2 = y0 - qs * y1;
    r0 = std::move(r1);
    r1 = std::move(rem);
    x0 = std::move(x1);
    x1 = std::move(x2);
    y0 = std::move(y1);
    y1 = std::move(y2);
  }
  return ExtendedGcd{std::move(r0), std::move(x0), std::move(y0)};
}

}  // namespace dubhe::bigint
