#include "bigint/biguint.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

#include "bigint/montgomery.hpp"

namespace dubhe::bigint {

namespace {
// Decimal conversion chunk: the largest power of ten below 2^64, so a full
// chunk of 19 digits still fits a limb.
constexpr std::uint64_t kDecChunkScale = 10000000000000000000ULL;  // 10^19
constexpr int kDecChunkDigits = 19;
}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::pow2(std::size_t k) {
  BigUint r;
  r.limbs_.assign(k / kLimbBits + 1, 0);
  r.limbs_.back() = Limb{1} << (k % kLimbBits);
  return r;
}

BigUint BigUint::from_hex(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigUint::from_hex: empty string");
  BigUint r;
  r.limbs_.assign(s.size() / (kLimbBits / 4) + 1, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = s.size(); i-- > 0;) {
    const char c = s[i];
    Limb v = 0;
    if (c >= '0' && c <= '9') v = static_cast<Limb>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<Limb>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<Limb>(c - 'A' + 10);
    else throw std::invalid_argument("BigUint::from_hex: bad character");
    r.limbs_[bitpos / kLimbBits] |= v << (bitpos % kLimbBits);
    bitpos += 4;
  }
  r.trim();
  return r;
}

BigUint BigUint::from_dec(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigUint::from_dec: empty string");
  BigUint r;
  // Consume up to 19 decimal digits at a time: r = r * 10^k + chunk.
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t take = std::min<std::size_t>(kDecChunkDigits, s.size() - i);
    std::uint64_t chunk = 0, scale = 1;
    for (std::size_t j = 0; j < take; ++j) {
      const char c = s[i + j];
      if (c < '0' || c > '9') throw std::invalid_argument("BigUint::from_dec: bad character");
      chunk = chunk * 10 + static_cast<std::uint64_t>(c - '0');
      scale = take == kDecChunkDigits ? kDecChunkScale : scale * 10;
    }
    // r = r * scale + chunk, in place.
    Limb carry = chunk;
    for (auto& limb : r.limbs_) {
      limb = mac(0, limb, scale, carry);
    }
    if (carry) r.limbs_.push_back(carry);
    i += take;
  }
  r.trim();
  return r;
}

BigUint BigUint::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigUint r;
  r.limbs_.assign(bytes.size() / 8 + 1, 0);
  std::size_t shift = 0, limb = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    r.limbs_[limb] |= static_cast<Limb>(bytes[i]) << shift;
    shift += 8;
    if (shift == kLimbBits) { shift = 0; ++limb; }
  }
  r.trim();
  return r;
}

BigUint BigUint::from_limbs_le(std::span<const std::uint64_t> words) {
  BigUint r;
  r.limbs_.assign(words.begin(), words.end());
  r.trim();
  return r;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return kLimbBits * (limbs_.size() - 1) +
         (kLimbBits - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1u;
}

std::string BigUint::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * (kLimbBits / 4));
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = kLimbBits / 4 - 1; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigUint::to_dec() const {
  if (limbs_.empty()) return "0";
  std::vector<Limb> work(limbs_);
  std::string out;
  while (!work.empty()) {
    // Divide work by 10^19, collecting the remainder.
    Limb rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      work[i] = div_2by1(rem, work[i], kDecChunkScale, rem);
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < kDecChunkDigits; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> BigUint::to_bytes_be(std::size_t pad_to) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(nbytes, pad_to);
  std::vector<std::uint8_t> out(total, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[total - 1 - i] = static_cast<std::uint8_t>(limbs_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

std::strong_ordering BigUint::operator<=>(const BigUint& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() <=> o.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] <=> o.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUint& BigUint::operator+=(const BigUint& o) {
  if (limbs_.size() < o.limbs_.size()) limbs_.resize(o.limbs_.size(), 0);
  Limb carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    limbs_[i] = addc(limbs_[i], o.limb(i), carry);
    if (carry == 0 && i >= o.limbs_.size()) break;
  }
  if (carry) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& o) {
  if (*this < o) throw std::underflow_error("BigUint subtraction underflow");
  Limb borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    limbs_[i] = subb(limbs_[i], o.limb(i), borrow);
    if (borrow == 0 && i >= o.limbs_.size()) break;
  }
  trim();
  return *this;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits, bit_shift = bits % kLimbBits;
  const std::size_t old = limbs_.size();
  limbs_.resize(old + limb_shift + (bit_shift ? 1 : 0), 0);
  if (bit_shift == 0) {
    for (std::size_t i = old; i-- > 0;) limbs_[i + limb_shift] = limbs_[i];
  } else {
    for (std::size_t i = old; i-- > 0;) {
      limbs_[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
      limbs_[i + limb_shift] = limbs_[i] << bit_shift;
    }
  }
  for (std::size_t i = 0; i < limb_shift; ++i) limbs_[i] = 0;
  trim();
  return *this;
}

BigUint& BigUint::operator>>=(std::size_t bits) {
  const std::size_t limb_shift = bits / kLimbBits, bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  const std::size_t n = limbs_.size() - limb_shift;
  for (std::size_t i = 0; i < n; ++i) {
    Limb v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= limbs_[i + limb_shift + 1] << (kLimbBits - bit_shift);
    }
    limbs_[i] = v;
  }
  limbs_.resize(n);
  trim();
  return *this;
}

BigUint BigUint::slice_limbs(std::size_t lo, std::size_t hi) const {
  BigUint r;
  hi = std::min(hi, limbs_.size());
  if (lo >= hi) return r;
  r.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(lo),
                  limbs_.begin() + static_cast<std::ptrdiff_t>(hi));
  r.trim();
  return r;
}

BigUint BigUint::mul_schoolbook(const BigUint& a, const BigUint& b) {
  BigUint r;
  if (a.is_zero() || b.is_zero()) return r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    Limb carry = 0;
    const Limb ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      r.limbs_[i + j] = mac(r.limbs_[i + j], ai, b.limbs_[j], carry);
    }
    r.limbs_[i + b.limbs_.size()] = carry;
  }
  r.trim();
  return r;
}

BigUint BigUint::mul_karatsuba(const BigUint& a, const BigUint& b) {
  const std::size_t m = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  const BigUint a0 = a.slice_limbs(0, m), a1 = a.slice_limbs(m, a.limbs_.size());
  const BigUint b0 = b.slice_limbs(0, m), b1 = b.slice_limbs(m, b.limbs_.size());
  const BigUint z0 = a0 * b0;
  const BigUint z2 = a1 * b1;
  BigUint z1 = (a0 + a1) * (b0 + b1);
  z1 -= z0;
  z1 -= z2;
  BigUint r = z2;
  r <<= kLimbBits * m;
  r += z1;
  r <<= kLimbBits * m;
  r += z0;
  return r;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (std::min(a.limbs_.size(), b.limbs_.size()) >= BigUint::kKaratsubaThreshold) {
    return BigUint::mul_karatsuba(a, b);
  }
  return BigUint::mul_schoolbook(a, b);
}

void BigUint::divmod(const BigUint& a, const BigUint& b, BigUint& q, BigUint& r) {
  if (b.is_zero()) throw std::domain_error("BigUint division by zero");
  if (a < b) {
    r = a;
    q = BigUint{};
    return;
  }
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const Limb d = b.limbs_[0];
    BigUint quot;
    quot.limbs_.assign(a.limbs_.size(), 0);
    Limb rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      quot.limbs_[i] = div_2by1(rem, a.limbs_[i], d, rem);
    }
    quot.trim();
    q = std::move(quot);
    r = BigUint{rem};
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top bit is set.
  const unsigned shift = static_cast<unsigned>(std::countl_zero(b.limbs_.back()));
  BigUint u = a << shift;
  const BigUint v = b << shift;
  const std::size_t n = v.limbs_.size();
  u.limbs_.resize(std::max(u.limbs_.size(), a.limbs_.size() + (shift ? 1u : 0u)) + 1, 0);
  const std::size_t m = u.limbs_.size() - n - 1;

  BigUint quot;
  quot.limbs_.assign(m + 1, 0);
  const Limb vtop = v.limbs_[n - 1], vsec = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate qhat from the top two dividend limbs against vtop. When the
    // top limb equals vtop the true quotient digit is base-1 (it cannot be
    // base or more after normalization).
    const Limb u2 = u.limbs_[j + n], u1 = u.limbs_[j + n - 1], u0 = u.limbs_[j + n - 2];
    Limb qhat, rhat;
    bool rhat_in_range;  // rhat < 2^64 (the correction loop stops beyond)
    if (u2 == vtop) {
      qhat = kLimbMax;
      rhat = u1 + vtop;
      rhat_in_range = rhat >= vtop;  // detects wraparound
    } else {
      qhat = div_2by1(u2, u1, vtop, rhat);
      rhat_in_range = true;
    }
    // Refine: decrement qhat while qhat * vsec overshoots (rhat, u0).
    while (rhat_in_range) {
      const LimbPair p = mul_wide(qhat, vsec);
      if (p.hi < rhat || (p.hi == rhat && p.lo <= u0)) break;
      --qhat;
      rhat += vtop;
      rhat_in_range = rhat >= vtop;
    }

    // Multiply-and-subtract qhat * v from u[j .. j+n].
    Limb borrow = 0, mul_carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Limb prod_lo = mac(0, qhat, v.limbs_[i], mul_carry);
      u.limbs_[j + i] = subb(u.limbs_[j + i], prod_lo, borrow);
    }
    u.limbs_[j + n] = subb(u.limbs_[j + n], mul_carry, borrow);
    if (borrow) {
      // qhat was one too large (rare): add v back and decrement qhat.
      --qhat;
      Limb c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u.limbs_[j + i] = addc(u.limbs_[j + i], v.limbs_[i], c);
      }
      u.limbs_[j + n] += c;  // cancels the borrow
    }
    quot.limbs_[j] = qhat;
  }

  quot.trim();
  u.limbs_.resize(n);
  u.trim();
  u >>= shift;
  q = std::move(quot);
  r = std::move(u);
}

std::uint64_t BigUint::mod_u64(std::uint64_t d) const {
  if (d == 0) throw std::domain_error("BigUint::mod_u64: division by zero");
  Limb rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    div_2by1(rem, limbs_[i], d, rem);
  }
  return rem;
}

BigUint BigUint::add_mod(const BigUint& o, const BigUint& m) const {
  BigUint s = *this + o;
  if (s >= m) s -= m;
  return s;
}

BigUint BigUint::mul_mod(const BigUint& o, const BigUint& m) const {
  return (*this * o) % m;
}

BigUint BigUint::pow_mod(const BigUint& e, const BigUint& m) const {
  if (m.is_zero()) throw std::domain_error("BigUint::pow_mod: zero modulus");
  if (m.is_one()) return BigUint{};
  if (m.is_odd()) {
    const Montgomery ctx(m);
    return ctx.pow(*this % m, e);
  }
  // Generic square-and-multiply for even moduli (not used by Paillier, whose
  // moduli are odd, but kept for API completeness).
  BigUint base = *this % m;
  BigUint result{1};
  for (std::size_t i = 0, nbits = e.bit_length(); i < nbits; ++i) {
    if (e.bit(i)) result = result.mul_mod(base, m);
    base = base.mul_mod(base, m);
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint q, r;
    divmod(a, b, q, r);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::lcm(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  return (a / gcd(a, b)) * b;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("BigUint::mod_inverse: zero modulus");
  // Iterative extended Euclid keeping only the coefficient of `a`. The
  // coefficient alternates in sign along the iteration, so we track its
  // magnitude and sign separately to stay within unsigned arithmetic.
  BigUint r0 = a % m, r1 = m;
  BigUint s0{1}, s1{0};
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    BigUint q, rem;
    divmod(r0, r1, q, rem);
    // s2 = s0 - q*s1
    BigUint qs1 = q * s1;
    BigUint s2;
    bool neg2;
    if (neg0 == neg1) {
      if (s0 >= qs1) { s2 = s0 - qs1; neg2 = neg0; }
      else { s2 = qs1 - s0; neg2 = !neg0; }
    } else {
      s2 = s0 + qs1;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(rem);
    s0 = std::move(s1);
    neg0 = neg1;
    s1 = std::move(s2);
    neg1 = neg2;
  }
  if (!r0.is_one()) throw std::domain_error("BigUint::mod_inverse: not invertible");
  BigUint inv = s0 % m;
  if (neg0 && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace dubhe::bigint
