#include "bigint/biguint.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <stdexcept>

#include "bigint/montgomery.hpp"

namespace dubhe::bigint {

namespace {
constexpr BigUint::Wide kBase = BigUint::Wide{1} << 32;
}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v == 0) return;
  limbs_.push_back(static_cast<Limb>(v));
  if (v >> 32) limbs_.push_back(static_cast<Limb>(v >> 32));
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::pow2(std::size_t k) {
  BigUint r;
  r.limbs_.assign(k / 32 + 1, 0);
  r.limbs_.back() = Limb{1} << (k % 32);
  return r;
}

BigUint BigUint::from_hex(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigUint::from_hex: empty string");
  BigUint r;
  r.limbs_.assign(s.size() / 8 + 1, 0);
  std::size_t bitpos = 0;
  for (std::size_t i = s.size(); i-- > 0;) {
    const char c = s[i];
    Limb v = 0;
    if (c >= '0' && c <= '9') v = static_cast<Limb>(c - '0');
    else if (c >= 'a' && c <= 'f') v = static_cast<Limb>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') v = static_cast<Limb>(c - 'A' + 10);
    else throw std::invalid_argument("BigUint::from_hex: bad character");
    r.limbs_[bitpos / 32] |= v << (bitpos % 32);
    bitpos += 4;
  }
  r.trim();
  return r;
}

BigUint BigUint::from_dec(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigUint::from_dec: empty string");
  BigUint r;
  // Consume 9 decimal digits at a time: r = r * 10^9 + chunk.
  std::size_t i = 0;
  while (i < s.size()) {
    const std::size_t take = std::min<std::size_t>(9, s.size() - i);
    std::uint32_t chunk = 0, scale = 1;
    for (std::size_t j = 0; j < take; ++j) {
      const char c = s[i + j];
      if (c < '0' || c > '9') throw std::invalid_argument("BigUint::from_dec: bad character");
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      scale *= 10;
    }
    // r = r * scale + chunk, in place.
    Wide carry = chunk;
    for (auto& limb : r.limbs_) {
      const Wide cur = static_cast<Wide>(limb) * scale + carry;
      limb = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    if (carry) r.limbs_.push_back(static_cast<Limb>(carry));
    i += take;
  }
  r.trim();
  return r;
}

BigUint BigUint::from_bytes_be(std::span<const std::uint8_t> bytes) {
  BigUint r;
  r.limbs_.assign(bytes.size() / 4 + 1, 0);
  std::size_t shift = 0, limb = 0;
  for (std::size_t i = bytes.size(); i-- > 0;) {
    r.limbs_[limb] |= static_cast<Limb>(bytes[i]) << shift;
    shift += 8;
    if (shift == 32) { shift = 0; ++limb; }
  }
  r.trim();
  return r;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * (limbs_.size() - 1) +
         (32 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

std::uint64_t BigUint::to_u64() const {
  std::uint64_t v = limbs_.empty() ? 0u : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::string BigUint::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(limbs_.size() * 8);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (nib * 4)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigUint::to_dec() const {
  if (limbs_.empty()) return "0";
  std::vector<Limb> work(limbs_);
  std::string out;
  while (!work.empty()) {
    // Divide work by 10^9, collecting the remainder.
    Wide rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const Wide cur = (rem << 32) | work[i];
      work[i] = static_cast<Limb>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::uint8_t> BigUint::to_bytes_be(std::size_t pad_to) const {
  const std::size_t nbytes = (bit_length() + 7) / 8;
  const std::size_t total = std::max(nbytes, pad_to);
  std::vector<std::uint8_t> out(total, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[total - 1 - i] = static_cast<std::uint8_t>(limbs_[i / 4] >> ((i % 4) * 8));
  }
  return out;
}

std::strong_ordering BigUint::operator<=>(const BigUint& o) const {
  if (limbs_.size() != o.limbs_.size()) {
    return limbs_.size() <=> o.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != o.limbs_[i]) return limbs_[i] <=> o.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUint& BigUint::operator+=(const BigUint& o) {
  if (limbs_.size() < o.limbs_.size()) limbs_.resize(o.limbs_.size(), 0);
  Wide carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const Wide cur = static_cast<Wide>(limbs_[i]) + o.limb(i) + carry;
    limbs_[i] = static_cast<Limb>(cur);
    carry = cur >> 32;
    if (carry == 0 && i >= o.limbs_.size()) break;
  }
  if (carry) limbs_.push_back(static_cast<Limb>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& o) {
  if (*this < o) throw std::underflow_error("BigUint subtraction underflow");
  Wide borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const Wide sub = static_cast<Wide>(o.limb(i)) + borrow;
    if (limbs_[i] >= sub) {
      limbs_[i] = static_cast<Limb>(limbs_[i] - sub);
      borrow = 0;
      if (i >= o.limbs_.size()) break;
    } else {
      limbs_[i] = static_cast<Limb>(kBase + limbs_[i] - sub);
      borrow = 1;
    }
  }
  trim();
  return *this;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (limbs_.empty() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32, bit_shift = bits % 32;
  const std::size_t old = limbs_.size();
  limbs_.resize(old + limb_shift + (bit_shift ? 1 : 0), 0);
  for (std::size_t i = old; i-- > 0;) {
    const Wide v = static_cast<Wide>(limbs_[i]) << bit_shift;
    limbs_[i + limb_shift + 1] |= static_cast<Limb>(v >> 32);
    limbs_[i + limb_shift] = static_cast<Limb>(v);
  }
  for (std::size_t i = 0; i < limb_shift; ++i) limbs_[i] = 0;
  trim();
  return *this;
}

BigUint& BigUint::operator>>=(std::size_t bits) {
  const std::size_t limb_shift = bits / 32, bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  const std::size_t n = limbs_.size() - limb_shift;
  for (std::size_t i = 0; i < n; ++i) {
    Wide v = static_cast<Wide>(limbs_[i + limb_shift]) >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<Wide>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    limbs_[i] = static_cast<Limb>(v);
  }
  limbs_.resize(n);
  trim();
  return *this;
}

BigUint BigUint::slice_limbs(std::size_t lo, std::size_t hi) const {
  BigUint r;
  hi = std::min(hi, limbs_.size());
  if (lo >= hi) return r;
  r.limbs_.assign(limbs_.begin() + static_cast<std::ptrdiff_t>(lo),
                  limbs_.begin() + static_cast<std::ptrdiff_t>(hi));
  r.trim();
  return r;
}

BigUint BigUint::mul_schoolbook(const BigUint& a, const BigUint& b) {
  BigUint r;
  if (a.is_zero() || b.is_zero()) return r;
  r.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    Wide carry = 0;
    const Wide ai = a.limbs_[i];
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const Wide cur = static_cast<Wide>(r.limbs_[i + j]) + ai * b.limbs_[j] + carry;
      r.limbs_[i + j] = static_cast<Limb>(cur);
      carry = cur >> 32;
    }
    r.limbs_[i + b.limbs_.size()] = static_cast<Limb>(carry);
  }
  r.trim();
  return r;
}

BigUint BigUint::mul_karatsuba(const BigUint& a, const BigUint& b) {
  const std::size_t m = std::max(a.limbs_.size(), b.limbs_.size()) / 2;
  const BigUint a0 = a.slice_limbs(0, m), a1 = a.slice_limbs(m, a.limbs_.size());
  const BigUint b0 = b.slice_limbs(0, m), b1 = b.slice_limbs(m, b.limbs_.size());
  const BigUint z0 = a0 * b0;
  const BigUint z2 = a1 * b1;
  BigUint z1 = (a0 + a1) * (b0 + b1);
  z1 -= z0;
  z1 -= z2;
  BigUint r = z2;
  r <<= 32 * m;
  r += z1;
  r <<= 32 * m;
  r += z0;
  return r;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (std::min(a.limbs_.size(), b.limbs_.size()) >= BigUint::kKaratsubaThreshold) {
    return BigUint::mul_karatsuba(a, b);
  }
  return BigUint::mul_schoolbook(a, b);
}

void BigUint::divmod(const BigUint& a, const BigUint& b, BigUint& q, BigUint& r) {
  if (b.is_zero()) throw std::domain_error("BigUint division by zero");
  if (a < b) {
    r = a;
    q = BigUint{};
    return;
  }
  if (b.limbs_.size() == 1) {
    // Single-limb fast path.
    const Wide d = b.limbs_[0];
    BigUint quot;
    quot.limbs_.assign(a.limbs_.size(), 0);
    Wide rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      const Wide cur = (rem << 32) | a.limbs_[i];
      quot.limbs_[i] = static_cast<Limb>(cur / d);
      rem = cur % d;
    }
    quot.trim();
    q = std::move(quot);
    r = BigUint{static_cast<std::uint64_t>(rem)};
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so the divisor's top bit is set.
  const unsigned shift = static_cast<unsigned>(std::countl_zero(b.limbs_.back()));
  BigUint u = a << shift;
  const BigUint v = b << shift;
  const std::size_t n = v.limbs_.size();
  u.limbs_.resize(std::max(u.limbs_.size(), a.limbs_.size() + (shift ? 1u : 0u)) + 1, 0);
  const std::size_t m = u.limbs_.size() - n - 1;

  BigUint quot;
  quot.limbs_.assign(m + 1, 0);
  const Wide vtop = v.limbs_[n - 1], vsec = v.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    const Wide numer = (static_cast<Wide>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    Wide qhat = numer / vtop;
    Wide rhat = numer % vtop;
    while (qhat >= kBase ||
           qhat * vsec > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract qhat * v from u[j .. j+n].
    Wide borrow = 0, carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Wide prod = qhat * v.limbs_[i] + carry;
      carry = prod >> 32;
      const Wide sub = static_cast<Wide>(static_cast<Limb>(prod)) + borrow;
      if (u.limbs_[j + i] >= sub) {
        u.limbs_[j + i] = static_cast<Limb>(u.limbs_[j + i] - sub);
        borrow = 0;
      } else {
        u.limbs_[j + i] = static_cast<Limb>(kBase + u.limbs_[j + i] - sub);
        borrow = 1;
      }
    }
    const Wide sub = carry + borrow;
    if (u.limbs_[j + n] >= sub) {
      u.limbs_[j + n] = static_cast<Limb>(u.limbs_[j + n] - sub);
      borrow = 0;
    } else {
      u.limbs_[j + n] = static_cast<Limb>(kBase + u.limbs_[j + n] - sub);
      borrow = 1;
    }
    if (borrow) {
      // qhat was one too large (rare): add v back and decrement qhat.
      --qhat;
      Wide c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const Wide cur = static_cast<Wide>(u.limbs_[j + i]) + v.limbs_[i] + c;
        u.limbs_[j + i] = static_cast<Limb>(cur);
        c = cur >> 32;
      }
      u.limbs_[j + n] = static_cast<Limb>(u.limbs_[j + n] + c);
    }
    quot.limbs_[j] = static_cast<Limb>(qhat);
  }

  quot.trim();
  u.limbs_.resize(n);
  u.trim();
  u >>= shift;
  q = std::move(quot);
  r = std::move(u);
}

BigUint BigUint::add_mod(const BigUint& o, const BigUint& m) const {
  BigUint s = *this + o;
  if (s >= m) s -= m;
  return s;
}

BigUint BigUint::mul_mod(const BigUint& o, const BigUint& m) const {
  return (*this * o) % m;
}

BigUint BigUint::pow_mod(const BigUint& e, const BigUint& m) const {
  if (m.is_zero()) throw std::domain_error("BigUint::pow_mod: zero modulus");
  if (m.is_one()) return BigUint{};
  if (m.is_odd()) {
    const Montgomery ctx(m);
    return ctx.pow(*this % m, e);
  }
  // Generic square-and-multiply for even moduli (not used by Paillier, whose
  // moduli are odd, but kept for API completeness).
  BigUint base = *this % m;
  BigUint result{1};
  for (std::size_t i = 0, nbits = e.bit_length(); i < nbits; ++i) {
    if (e.bit(i)) result = result.mul_mod(base, m);
    base = base.mul_mod(base, m);
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint q, r;
    divmod(a, b, q, r);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::lcm(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  return (a / gcd(a, b)) * b;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("BigUint::mod_inverse: zero modulus");
  // Iterative extended Euclid keeping only the coefficient of `a`. The
  // coefficient alternates in sign along the iteration, so we track its
  // magnitude and sign separately to stay within unsigned arithmetic.
  BigUint r0 = a % m, r1 = m;
  BigUint s0{1}, s1{0};
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    BigUint q, rem;
    divmod(r0, r1, q, rem);
    // s2 = s0 - q*s1
    BigUint qs1 = q * s1;
    BigUint s2;
    bool neg2;
    if (neg0 == neg1) {
      if (s0 >= qs1) { s2 = s0 - qs1; neg2 = neg0; }
      else { s2 = qs1 - s0; neg2 = !neg0; }
    } else {
      s2 = s0 + qs1;
      neg2 = neg0;
    }
    r0 = std::move(r1);
    r1 = std::move(rem);
    s0 = std::move(s1);
    neg0 = neg1;
    s1 = std::move(s2);
    neg1 = neg2;
  }
  if (!r0.is_one()) throw std::domain_error("BigUint::mod_inverse: not invertible");
  BigUint inv = s0 % m;
  if (neg0 && !inv.is_zero()) inv = m - inv;
  return inv;
}

}  // namespace dubhe::bigint
