#include "bigint/random.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace dubhe::bigint {

std::uint64_t SplitMix64::next_u64() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256ss::Xoshiro256ss(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next_u64();
}

Xoshiro256ss::Xoshiro256ss(const std::array<std::uint64_t, 4>& state) : s_(state) {
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    SplitMix64 sm(0);
    for (auto& word : s_) word = sm.next_u64();
  }
}

std::uint64_t Xoshiro256ss::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

double Xoshiro256ss::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Xoshiro256ss::next_below(std::uint64_t bound) {
  // Lemire's unbiased bounded generation with rejection. The widening
  // multiply goes through the limb primitives so this stays portable on
  // compilers without __int128.
  if (bound == 0) throw std::invalid_argument("next_below: zero bound");
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const LimbPair m = mul_wide(next_u64(), bound);
    if (m.lo >= threshold) return m.hi;
  }
}

std::uint64_t SystemEntropySource::next_u64() {
  static thread_local std::FILE* urandom = std::fopen("/dev/urandom", "rb");
  if (urandom == nullptr) throw std::runtime_error("cannot open /dev/urandom");
  std::uint64_t v = 0;
  if (std::fread(&v, sizeof(v), 1, urandom) != 1) {
    throw std::runtime_error("short read from /dev/urandom");
  }
  return v;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) {
  SplitMix64 sm(master ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next_u64();
}

BigUint random_bits(EntropySource& rng, std::size_t bits) {
  if (bits == 0) return BigUint{};
  // One generator word per 64-bit limb, imported directly — no byte
  // round-trip. The first word drawn is the most significant limb; excess
  // high bits beyond `bits` are dropped from it.
  const std::size_t words = (bits + 63) / 64;
  std::vector<std::uint64_t> limbs(words);
  for (std::size_t w = 0; w < words; ++w) limbs[words - 1 - w] = rng.next_u64();
  const std::size_t excess = words * 64 - bits;
  if (excess > 0) limbs[words - 1] >>= excess;
  return BigUint::from_limbs_le(limbs);
}

BigUint random_exact_bits(EntropySource& rng, std::size_t bits) {
  if (bits == 0) return BigUint{};
  BigUint r = random_bits(rng, bits);
  // Force the top bit so the value has exactly `bits` significant bits.
  BigUint top = BigUint::pow2(bits - 1);
  if (r < top) r += top;
  return r;
}

BigUint random_below(EntropySource& rng, const BigUint& n) {
  if (n.is_zero()) throw std::invalid_argument("random_below: zero bound");
  const std::size_t bits = n.bit_length();
  for (;;) {
    BigUint r = random_bits(rng, bits);
    if (r < n) return r;
  }
}

}  // namespace dubhe::bigint
