#pragma once

#include <cstdint>

// The bigint layer works on 64-bit limbs and needs a 64x64 -> 128-bit
// multiply plus a 128/64 -> 64 divide. On GCC/Clang (and any compiler
// defining __SIZEOF_INT128__) these compile to single instructions through
// `unsigned __int128`. Define DUBHE_NO_INT128 to force the portable
// fallback, which synthesizes both from 32-bit halves; the fallback is also
// what compilers without __int128 get automatically.
#if defined(__SIZEOF_INT128__) && !defined(DUBHE_NO_INT128)
#define DUBHE_HAS_INT128 1
#else
#define DUBHE_HAS_INT128 0
#endif

namespace dubhe::bigint {

/// Storage word of BigUint. All multi-precision loops below are written
/// against the primitives in this header so the limb width is set in
/// exactly one place.
using Limb = std::uint64_t;
inline constexpr unsigned kLimbBits = 64;
inline constexpr Limb kLimbMax = ~Limb{0};

/// A double-width value split into limbs (lo is the less significant half).
struct LimbPair {
  Limb lo;
  Limb hi;
};

/// Full 64x64 -> 128-bit product.
inline LimbPair mul_wide(Limb a, Limb b) {
#if DUBHE_HAS_INT128
  const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
  return {static_cast<Limb>(p), static_cast<Limb>(p >> 64)};
#else
  // Four 32x32 -> 64 partial products. `mid` cannot overflow: it sums one
  // 32-bit high half and two 32-bit-truncated products, max < 3 * 2^32.
  const std::uint64_t a0 = a & 0xffffffffu, a1 = a >> 32;
  const std::uint64_t b0 = b & 0xffffffffu, b1 = b >> 32;
  const std::uint64_t p00 = a0 * b0;
  const std::uint64_t p01 = a0 * b1;
  const std::uint64_t p10 = a1 * b0;
  const std::uint64_t mid = (p00 >> 32) + (p01 & 0xffffffffu) + (p10 & 0xffffffffu);
  return {(mid << 32) | (p00 & 0xffffffffu),
          a1 * b1 + (p01 >> 32) + (p10 >> 32) + (mid >> 32)};
#endif
}

/// a + b + carry; `carry` (0 or 1 on entry) is replaced by the outgoing carry.
inline Limb addc(Limb a, Limb b, Limb& carry) {
  const Limb s1 = a + b;
  const Limb c1 = static_cast<Limb>(s1 < a);
  const Limb s2 = s1 + carry;
  carry = c1 + static_cast<Limb>(s2 < s1);
  return s2;
}

/// a - b - borrow; `borrow` (0 or 1 on entry) is replaced by the outgoing
/// borrow.
inline Limb subb(Limb a, Limb b, Limb& borrow) {
  const Limb d1 = a - b;
  const Limb b1 = static_cast<Limb>(a < b);
  const Limb d2 = d1 - borrow;
  borrow = b1 + static_cast<Limb>(d1 < borrow);
  return d2;
}

/// acc + a * b + carry; returns the low limb and replaces `carry` with the
/// high limb. Exact in 128 bits: (2^64-1)^2 + 2(2^64-1) = 2^128 - 1.
inline Limb mac(Limb acc, Limb a, Limb b, Limb& carry) {
#if DUBHE_HAS_INT128
  const unsigned __int128 cur =
      static_cast<unsigned __int128>(a) * b + acc + carry;
  carry = static_cast<Limb>(cur >> 64);
  return static_cast<Limb>(cur);
#else
  LimbPair p = mul_wide(a, b);
  Limb c = 0;
  Limb lo = addc(p.lo, acc, c);
  p.hi += c;
  c = 0;
  lo = addc(lo, carry, c);
  carry = p.hi + c;
  return lo;
#endif
}

/// ((hi << 64) | lo) / d, remainder in `rem`. Requires hi < d so the
/// quotient fits in one limb.
inline Limb div_2by1(Limb hi, Limb lo, Limb d, Limb& rem) {
#if DUBHE_HAS_INT128
  const unsigned __int128 n = (static_cast<unsigned __int128>(hi) << 64) | lo;
  rem = static_cast<Limb>(n % d);
  return static_cast<Limb>(n / d);
#else
  // Knuth base-2^32 schoolbook division (two digit steps), after
  // normalizing so the divisor's top bit is set.
  int shift = 0;
  for (Limb t = d; (t & (Limb{1} << 63)) == 0; t <<= 1) ++shift;
  const Limb dn = d << shift;
  const Limb hin = shift ? (hi << shift) | (lo >> (64 - shift)) : hi;
  const Limb lon = lo << shift;
  const Limb d1 = dn >> 32, d0 = dn & 0xffffffffu;
  const Limb l1 = lon >> 32, l0 = lon & 0xffffffffu;

  const auto digit = [&](Limb num_hi, Limb num_lo) -> LimbPair {
    // One 32-bit quotient digit of (num_hi:num_lo) / dn; returns
    // {digit, partial remainder}.
    Limb q = num_hi / d1;
    Limb r = num_hi % d1;
    while (q > 0xffffffffu || q * d0 > ((r << 32) | num_lo)) {
      --q;
      r += d1;
      if (r > 0xffffffffu) break;
    }
    return {q, ((num_hi << 32) | num_lo) - q * dn};
  };

  const LimbPair q1 = digit(hin, l1);
  const LimbPair q0 = digit(q1.hi, l0);
  rem = q0.hi >> shift;
  return (q1.lo << 32) | q0.lo;
#endif
}

}  // namespace dubhe::bigint
