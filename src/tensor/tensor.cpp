#include "tensor/tensor.hpp"

#include <numeric>
#include <stdexcept>

namespace dubhe::tensor {

namespace {
std::size_t product(const std::vector<std::size_t>& dims) {
  std::size_t p = 1;
  for (const std::size_t d : dims) p *= d;
  return p;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(product(shape_), 0.0f) {
  if (shape_.empty()) throw std::invalid_argument("Tensor: empty shape");
}

Tensor::Tensor(std::initializer_list<std::size_t> shape)
    : Tensor(std::vector<std::size_t>(shape)) {}

float Tensor::at(std::size_t r, std::size_t c) const {
  if (rank() != 2 || r >= shape_[0] || c >= shape_[1]) {
    throw std::out_of_range("Tensor::at");
  }
  return (*this)(r, c);
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (product(new_shape) != size()) {
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::resize(std::span<const std::size_t> new_shape) {
  if (new_shape.empty()) throw std::invalid_argument("Tensor::resize: empty shape");
  shape_.assign(new_shape.begin(), new_shape.end());
  data_.resize(product(shape_));
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

}  // namespace dubhe::tensor
