#pragma once

// SIMD dispatch for the compute kernels: compiled in at build time,
// validated at run time.
//
// The `DUBHE_SIMD` CMake option (ON by default) defines DUBHE_SIMD_ENABLED
// and, when the compiler accepts them, adds -mavx2 -mfma to the library
// sources. All vector code lives behind the DUBHE_SIMD_AVX2 gate below so a
// DUBHE_SIMD=OFF build — or any target without AVX2/FMA — compiles only the
// portable scalar kernels and produces a binary with no AVX instructions.
// The same DUBHE_SIMD_ENABLED gate selects the unrolled CIOS inner loop in
// bigint::Montgomery (plain C unrolling, bit-identical, ISA-independent).
//
// Whether the compiled-in kernels actually *run* is decided through
// core::cpu at first use: simd_available() additionally requires detected
// AVX2+FMA under the current DUBHE_CPU policy, so the same binary degrades
// to scalar on a lesser host (or under DUBHE_CPU=portable) instead of
// faulting.

#if defined(DUBHE_SIMD_ENABLED) && defined(__AVX2__) && defined(__FMA__)
#define DUBHE_SIMD_AVX2 1
#else
#define DUBHE_SIMD_AVX2 0
#endif

namespace dubhe::tensor {

/// True when the AVX2+FMA kernels were compiled into this binary AND the
/// host offers (and DUBHE_CPU allows) AVX2+FMA — see core/cpu.hpp.
bool simd_available();

/// Runtime kill-switch over the compiled-in kernels, for benches and parity
/// tests that compare the two backends in one process: set_simd_enabled(false)
/// forces the scalar microkernel even when AVX2 is built. Enabling is a no-op
/// when simd_available() is false. Returns the previous setting. Not
/// synchronized with in-flight kernels — flip it only between operations.
bool set_simd_enabled(bool on);
bool simd_enabled();

/// "avx2" or "scalar" — the backend the next kernel call will use.
const char* simd_backend_name();

}  // namespace dubhe::tensor
