#include "tensor/threadpool.hpp"

#include <algorithm>
#include <atomic>

namespace dubhe::tensor {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      const std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  const std::size_t shards = std::min(n, thread_count());
  for (std::size_t s = 0; s < shards; ++s) {
    submit([&next, n, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  wait_idle();
}

}  // namespace dubhe::tensor
