#include "tensor/ops.hpp"

#include <stdexcept>

#include "tensor/gemm.hpp"

namespace dubhe::tensor {

namespace {

struct GemmShape {
  std::size_t m, n, k;
};

GemmShape check_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  if (a.rank() != 2 || b.rank() != 2) throw std::invalid_argument("matmul: rank != 2");
  const std::size_t m = ta ? a.dim(1) : a.dim(0);
  const std::size_t k = ta ? a.dim(0) : a.dim(1);
  const std::size_t kb = tb ? b.dim(1) : b.dim(0);
  const std::size_t n = tb ? b.dim(0) : b.dim(1);
  if (k != kb) throw std::invalid_argument("matmul: inner dimension mismatch");
  return {m, n, k};
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  const GemmShape s = check_matmul(a, b, transpose_a, transpose_b);
  Tensor c{{s.m, s.n}};
  gemm(s.m, s.n, s.k, a.data(), a.dim(1), transpose_a, b.data(), b.dim(1),
       transpose_b, c.data());
  return c;
}

Tensor matmul_bias(const Tensor& a, const Tensor& b, std::span<const float> bias,
                   bool transpose_a, bool transpose_b) {
  const GemmShape s = check_matmul(a, b, transpose_a, transpose_b);
  if (bias.size() != s.n) throw std::invalid_argument("matmul_bias: bias size mismatch");
  Tensor c{{s.m, s.n}};
  gemm(s.m, s.n, s.k, a.data(), a.dim(1), transpose_a, b.data(), b.dim(1),
       transpose_b, c.data(), bias.data());
  return c;
}

Tensor matmul_bias_relu(const Tensor& a, const Tensor& b, std::span<const float> bias,
                        Tensor& relu_mask, bool transpose_a, bool transpose_b) {
  const GemmShape s = check_matmul(a, b, transpose_a, transpose_b);
  if (bias.size() != s.n) {
    throw std::invalid_argument("matmul_bias_relu: bias size mismatch");
  }
  Tensor c{{s.m, s.n}};
  relu_mask.resize({s.m, s.n});
  gemm(s.m, s.n, s.k, a.data(), a.dim(1), transpose_a, b.data(), b.dim(1),
       transpose_b, c.data(), bias.data(), /*relu=*/true, relu_mask.data());
  return c;
}

void add_bias_rows(Tensor& x, std::span<const float> bias) {
  if (x.rank() != 2 || x.dim(1) != bias.size()) {
    throw std::invalid_argument("add_bias_rows: shape mismatch");
  }
  float* data = x.data();
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    for (std::size_t j = 0; j < bias.size(); ++j) data[i * bias.size() + j] += bias[j];
  }
}

void sum_rows(const Tensor& x, std::span<float> out) {
  if (x.rank() != 2 || x.dim(1) != out.size()) {
    throw std::invalid_argument("sum_rows: shape mismatch");
  }
  for (float& v : out) v = 0;
  const float* data = x.data();
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += data[i * out.size() + j];
  }
}

Tensor relu_inplace(Tensor& x) {
  Tensor mask;
  relu_inplace(x, mask);
  return mask;
}

void relu_inplace(Tensor& x, Tensor& mask) {
  mask.resize(x.shape());
  float* d = x.data();
  float* m = mask.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (d[i] > 0) {
      m[i] = 1.0f;
    } else {
      d[i] = 0.0f;
      m[i] = 0.0f;
    }
  }
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& mask) {
  Tensor g = grad_out;
  relu_backward_inplace(g, mask);
  return g;
}

void relu_backward_inplace(Tensor& grad, const Tensor& mask) {
  if (grad.size() != mask.size()) {
    throw std::invalid_argument("relu_backward: size mismatch");
  }
  float* d = grad.data();
  const float* m = mask.data();
  for (std::size_t i = 0; i < grad.size(); ++i) d[i] *= m[i];
}

void axpy(Tensor& a, float s, const Tensor& b) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += s * bd[i];
}

}  // namespace dubhe::tensor
