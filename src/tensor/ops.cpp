#include "tensor/ops.hpp"

#include <stdexcept>

namespace dubhe::tensor {

Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a, bool transpose_b) {
  if (a.rank() != 2 || b.rank() != 2) throw std::invalid_argument("matmul: rank != 2");
  const std::size_t m = transpose_a ? a.dim(1) : a.dim(0);
  const std::size_t k = transpose_a ? a.dim(0) : a.dim(1);
  const std::size_t kb = transpose_b ? b.dim(1) : b.dim(0);
  const std::size_t n = transpose_b ? b.dim(0) : b.dim(1);
  if (k != kb) throw std::invalid_argument("matmul: inner dimension mismatch");

  Tensor c{{m, n}};
  const float* A = a.data();
  const float* B = b.data();
  float* C = c.data();
  const std::size_t lda = a.dim(1), ldb = b.dim(1);

  // i-k-j loop order keeps the innermost loop contiguous over B and C for
  // the common non-transposed case.
  if (!transpose_a && !transpose_b) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = A[i * lda + kk];
        if (aik == 0.0f) continue;
        const float* Brow = B + kk * ldb;
        float* Crow = C + i * n;
        for (std::size_t j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
      }
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = transpose_a ? A[kk * lda + i] : A[i * lda + kk];
        if (aik == 0.0f) continue;
        float* Crow = C + i * n;
        if (transpose_b) {
          for (std::size_t j = 0; j < n; ++j) Crow[j] += aik * B[j * ldb + kk];
        } else {
          const float* Brow = B + kk * ldb;
          for (std::size_t j = 0; j < n; ++j) Crow[j] += aik * Brow[j];
        }
      }
    }
  }
  return c;
}

void add_bias_rows(Tensor& x, std::span<const float> bias) {
  if (x.rank() != 2 || x.dim(1) != bias.size()) {
    throw std::invalid_argument("add_bias_rows: shape mismatch");
  }
  float* data = x.data();
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    for (std::size_t j = 0; j < bias.size(); ++j) data[i * bias.size() + j] += bias[j];
  }
}

void sum_rows(const Tensor& x, std::span<float> out) {
  if (x.rank() != 2 || x.dim(1) != out.size()) {
    throw std::invalid_argument("sum_rows: shape mismatch");
  }
  for (float& v : out) v = 0;
  const float* data = x.data();
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    for (std::size_t j = 0; j < out.size(); ++j) out[j] += data[i * out.size() + j];
  }
}

Tensor relu_inplace(Tensor& x) {
  Tensor mask = Tensor::zeros_like(x);
  float* d = x.data();
  float* m = mask.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (d[i] > 0) {
      m[i] = 1.0f;
    } else {
      d[i] = 0.0f;
    }
  }
  return mask;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& mask) {
  if (grad_out.size() != mask.size()) {
    throw std::invalid_argument("relu_backward: size mismatch");
  }
  Tensor g = grad_out;
  float* d = g.data();
  const float* m = mask.data();
  for (std::size_t i = 0; i < g.size(); ++i) d[i] *= m[i];
  return g;
}

void axpy(Tensor& a, float s, const Tensor& b) {
  if (a.size() != b.size()) throw std::invalid_argument("axpy: size mismatch");
  float* ad = a.data();
  const float* bd = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) ad[i] += s * bd[i];
}

}  // namespace dubhe::tensor
