#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace dubhe::tensor {

/// Dense row-major float tensor. Rank is dynamic but small (<= 4 in this
/// codebase: [batch, features] for dense layers, [batch, C, H, W] for conv).
/// Deliberately minimal — contiguous storage, no views/strides — because the
/// NN substrate only needs batched forward/backward over small models.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape);

  [[nodiscard]] static Tensor zeros_like(const Tensor& o) { return Tensor(o.shape_); }

  [[nodiscard]] const std::vector<std::size_t>& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> flat() { return data_; }
  [[nodiscard]] std::span<const float> flat() const { return data_; }

  /// 2-D element access (debug-checked in tests via at()).
  float& operator()(std::size_t r, std::size_t c) { return data_[r * shape_[1] + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * shape_[1] + c]; }
  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] float at(std::size_t r, std::size_t c) const;

  /// Returns a reshaped copy sharing no storage. Product of dims must match.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Reshapes in place to an arbitrary new shape, reusing the existing
  /// allocation when capacity suffices (the workspace-reuse primitive).
  /// Element values are unspecified afterwards — callers overwrite or
  /// fill(). Throws std::invalid_argument on an empty shape.
  void resize(std::span<const std::size_t> new_shape);
  void resize(std::initializer_list<std::size_t> new_shape) {
    resize(std::span<const std::size_t>(new_shape.begin(), new_shape.size()));
  }

  void fill(float v);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace dubhe::tensor
