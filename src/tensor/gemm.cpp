#include "tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "core/cpu.hpp"
#include "core/parallel.hpp"
#include "tensor/simd.hpp"

#if DUBHE_SIMD_AVX2
#include <immintrin.h>
#endif

namespace dubhe::tensor {

namespace {

// Register tile of the AVX2 microkernel: 8 rows of C by one 8-float column
// vector (8 ymm accumulators fed by one B load and 8 A broadcasts per k
// step). The scalar backend uses the same packed operands but runs whole
// kMr x n_pad row panels with a long contiguous inner loop instead — the
// shape compilers reliably auto-vectorize.
constexpr std::size_t kMr = 8;
constexpr std::size_t kNr = 8;

std::atomic<std::size_t> g_compute_threads{0};
/// -1 = unresolved. Resolution is lazy (first simd_enabled() call), not
/// static-init: the default must consult core::cpu, which reads the
/// DUBHE_CPU environment override.
std::atomic<int> g_simd_state{-1};

/// Packs op(B) row-major into [k][n_pad] with the padding columns zeroed,
/// normalizing the transpose. This is the scalar backend's layout: long
/// contiguous rows for the unit-stride inner loop.
void pack_b_rows(std::size_t n, std::size_t n_pad, std::size_t k, const float* b,
                 std::size_t ldb, bool tb, float* __restrict bp) {
  for (std::size_t kk = 0; kk < k; ++kk) {
    float* dst = bp + kk * n_pad;
    if (!tb) {
      const float* src = b + kk * ldb;
      for (std::size_t j = 0; j < n; ++j) dst[j] = src[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) dst[j] = b[j * ldb + kk];
    }
    for (std::size_t j = n; j < n_pad; ++j) dst[j] = 0.0f;
  }
}

#if DUBHE_SIMD_AVX2
/// Packs op(B) into kNr-column panels [panel][kk][kNr], zero-padded — the
/// AVX2 microkernel's layout, one contiguous vector load per k step.
void pack_b_panels(std::size_t n, std::size_t k, const float* b, std::size_t ldb,
                   bool tb, float* __restrict bp) {
  const std::size_t panels = (n + kNr - 1) / kNr;
  for (std::size_t p = 0; p < panels; ++p) {
    const std::size_t j0 = p * kNr;
    const std::size_t vn = std::min(kNr, n - j0);
    float* dst = bp + p * k * kNr;
    for (std::size_t kk = 0; kk < k; ++kk, dst += kNr) {
      std::size_t jj = 0;
      if (!tb) {
        const float* src = b + kk * ldb + j0;
        for (; jj < vn; ++jj) dst[jj] = src[jj];
      } else {
        for (; jj < vn; ++jj) dst[jj] = b[(j0 + jj) * ldb + kk];
      }
      for (; jj < kNr; ++jj) dst[jj] = 0.0f;
    }
  }
}
#endif  // DUBHE_SIMD_AVX2

/// Packs one kMr-row panel of op(A): ap[kk][0..kMr), zero-padded rows.
void pack_a_panel(std::size_t i0, std::size_t vm, std::size_t k, const float* a,
                  std::size_t lda, bool ta, float* __restrict ap) {
  if (!ta) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      float* dst = ap + kk * kMr;
      std::size_t ii = 0;
      for (; ii < vm; ++ii) dst[ii] = a[(i0 + ii) * lda + kk];
      for (; ii < kMr; ++ii) dst[ii] = 0.0f;
    }
  } else {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* src = a + kk * lda + i0;
      float* dst = ap + kk * kMr;
      std::size_t ii = 0;
      for (; ii < vm; ++ii) dst[ii] = src[ii];
      for (; ii < kMr; ++ii) dst[ii] = 0.0f;
    }
  }
}

/// Scalar row-panel kernel: acc[kMr][n_pad] = panel(A) @ packed B, with a
/// contiguous unit-stride inner loop over n_pad that plain -O3 vectorizes.
/// Accumulation over kk is in increasing order for every element, so
/// results are deterministic for any thread count *within* this backend;
/// the AVX2 kernel's fused multiply-adds round differently, so the two
/// backends agree only to within FMA rounding (see the parity suite).
void kernel_scalar_panel(std::size_t k, std::size_t n_pad, const float* __restrict ap,
                         const float* __restrict bp, float* __restrict acc) {
  std::fill(acc, acc + kMr * n_pad, 0.0f);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict brow = bp + kk * n_pad;
    const float* __restrict arow = ap + kk * kMr;
    for (std::size_t ii = 0; ii < kMr; ++ii) {
      const float av = arow[ii];
      float* __restrict crow = acc + ii * n_pad;
      for (std::size_t jj = 0; jj < n_pad; ++jj) crow[jj] += av * brow[jj];
    }
  }
}

#if DUBHE_SIMD_AVX2
/// AVX2+FMA microkernel: one kMr x kNr tile against one packed B panel, k
/// unrolled by 2 to keep the two FMA pipes fed across the 8-deep
/// dependency chains.
void kernel_avx2(std::size_t k, const float* ap, const float* bp, float* acc) {
  __m256 c0 = _mm256_setzero_ps(), c1 = _mm256_setzero_ps();
  __m256 c2 = _mm256_setzero_ps(), c3 = _mm256_setzero_ps();
  __m256 c4 = _mm256_setzero_ps(), c5 = _mm256_setzero_ps();
  __m256 c6 = _mm256_setzero_ps(), c7 = _mm256_setzero_ps();
  std::size_t kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const float* a0 = ap + kk * kMr;
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 0), b0, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 1), b0, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 2), b0, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 3), b0, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 4), b0, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 5), b0, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 6), b0, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 7), b0, c7);
    const float* a1 = a0 + kMr;
    const __m256 b1 = _mm256_loadu_ps(bp + (kk + 1) * kNr);
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 0), b1, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 1), b1, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 2), b1, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 3), b1, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 4), b1, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 5), b1, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 6), b1, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + 7), b1, c7);
  }
  for (; kk < k; ++kk) {
    const float* a0 = ap + kk * kMr;
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNr);
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 0), b0, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 1), b0, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 2), b0, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 3), b0, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 4), b0, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 5), b0, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 6), b0, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + 7), b0, c7);
  }
  _mm256_storeu_ps(acc + 0 * kNr, c0);
  _mm256_storeu_ps(acc + 1 * kNr, c1);
  _mm256_storeu_ps(acc + 2 * kNr, c2);
  _mm256_storeu_ps(acc + 3 * kNr, c3);
  _mm256_storeu_ps(acc + 4 * kNr, c4);
  _mm256_storeu_ps(acc + 5 * kNr, c5);
  _mm256_storeu_ps(acc + 6 * kNr, c6);
  _mm256_storeu_ps(acc + 7 * kNr, c7);
}
#endif  // DUBHE_SIMD_AVX2

/// Writes the valid region of one accumulator block (row stride `astride`)
/// to C with the fused epilogue. Shared between backends, so scalar/SIMD
/// differ only in the accumulation itself (FMA rounding).
void store_block(const float* acc, std::size_t astride, float* c, std::size_t n,
                 std::size_t i0, std::size_t vm, std::size_t j0, std::size_t vn,
                 const float* bias, bool relu, float* relu_mask) {
  for (std::size_t ii = 0; ii < vm; ++ii) {
    float* crow = c + (i0 + ii) * n + j0;
    const float* arow = acc + ii * astride;
    for (std::size_t jj = 0; jj < vn; ++jj) {
      float v = arow[jj];
      if (bias != nullptr) v += bias[j0 + jj];
      if (relu) {
        const bool live = v > 0.0f;
        if (relu_mask != nullptr) {
          relu_mask[(i0 + ii) * n + j0 + jj] = live ? 1.0f : 0.0f;
        }
        v = live ? v : 0.0f;
      }
      crow[jj] = v;
    }
  }
}

}  // namespace

bool simd_available() {
#if DUBHE_SIMD_AVX2
  // Compiled in is necessary, not sufficient: the host must actually have
  // (and the DUBHE_CPU policy must allow) AVX2+FMA, or the vector kernels
  // would fault — a binary built -mavx2 still runs on a lesser machine as
  // long as dispatch keeps it on the scalar path.
  return core::cpu::has(core::cpu::kAvx2) && core::cpu::has(core::cpu::kFma);
#else
  return false;
#endif
}

bool set_simd_enabled(bool on) {
  const bool prev = simd_enabled();
  g_simd_state.store((on && simd_available()) ? 1 : 0);
  return prev;
}

bool simd_enabled() {
  int s = g_simd_state.load();
  if (s < 0) {
    // Benign race: concurrent first calls resolve to the same value.
    s = simd_available() ? 1 : 0;
    g_simd_state.store(s);
  }
  return s != 0;
}

const char* simd_backend_name() { return simd_enabled() ? "avx2" : "scalar"; }

std::size_t set_compute_threads(std::size_t threads) {
  return g_compute_threads.exchange(threads);
}

std::size_t compute_threads() { return g_compute_threads.load(); }

void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, bool ta, const float* b, std::size_t ldb, bool tb,
          float* c, const float* bias, bool relu, float* relu_mask) {
  if (m == 0 || n == 0) return;

  const std::size_t n_pad = ((n + kNr - 1) / kNr) * kNr;
  const std::size_t row_panels = (m + kMr - 1) / kMr;
  const bool use_simd = simd_enabled();

  // One packed copy of B — laid out for whichever kernel will run: column
  // panels for the AVX2 tiles, padded rows for the scalar panel loop —
  // shared (read-only) by every row-panel shard. The buffer is
  // thread_local so repeated calls from the same thread — every training
  // step — reuse it; it is only read while this frame blocks in
  // parallel_for, so worker shards referencing it is safe.
  thread_local std::vector<float> bp_buf;
  bp_buf.resize(std::max<std::size_t>(1, k * n_pad));
#if DUBHE_SIMD_AVX2
  if (use_simd) {
    pack_b_panels(n, k, b, ldb, tb, bp_buf.data());
  } else {
    pack_b_rows(n, n_pad, k, b, ldb, tb, bp_buf.data());
  }
#else
  pack_b_rows(n, n_pad, k, b, ldb, tb, bp_buf.data());
#endif
  const float* bp = bp_buf.data();
  (void)use_simd;

  const std::size_t threads = m * n * k >= kParallelFlopCutoff ? compute_threads() : 1;

  core::parallel_for(row_panels, threads, [&](std::size_t p) {
    thread_local std::vector<float> ap_buf;
    ap_buf.resize(std::max<std::size_t>(1, k * kMr));
    const std::size_t i0 = p * kMr;
    const std::size_t vm = std::min(kMr, m - i0);
    pack_a_panel(i0, vm, k, a, lda, ta, ap_buf.data());
#if DUBHE_SIMD_AVX2
    if (use_simd) {
      alignas(32) float acc[kMr * kNr];
      for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
        kernel_avx2(k, ap_buf.data(), bp + (j0 / kNr) * k * kNr, acc);
        store_block(acc, kNr, c, n, i0, vm, j0, std::min(kNr, n - j0), bias, relu,
                    relu_mask);
      }
      return;
    }
#endif
    thread_local std::vector<float> acc_buf;
    acc_buf.resize(std::max<std::size_t>(1, kMr * n_pad));
    kernel_scalar_panel(k, n_pad, ap_buf.data(), bp, acc_buf.data());
    store_block(acc_buf.data(), n_pad, c, n, i0, vm, 0, n, bias, relu, relu_mask);
  });
}

}  // namespace dubhe::tensor
