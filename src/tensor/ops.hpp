#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace dubhe::tensor {

/// C = A @ B with optional transposes. A is [m, k] (or [k, m] when
/// transpose_a), B is [k, n] (or [n, k] when transpose_b), C is [m, n].
/// Blocked inner loops; single-threaded by design — the FL layer
/// parallelizes across clients, which scales better than intra-GEMM threads
/// at these model sizes. Throws std::invalid_argument on shape mismatch.
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// y += row broadcast over the batch dimension: x is [batch, n], bias is n.
void add_bias_rows(Tensor& x, std::span<const float> bias);

/// Column sums of a [batch, n] tensor into `out` (size n) — the bias grad.
void sum_rows(const Tensor& x, std::span<float> out);

/// In-place ReLU; returns a 0/1 mask tensor for the backward pass.
Tensor relu_inplace(Tensor& x);
/// grad_in = grad_out * mask (elementwise).
Tensor relu_backward(const Tensor& grad_out, const Tensor& mask);

/// a += s * b (elementwise, flattened). Sizes must match.
void axpy(Tensor& a, float s, const Tensor& b);

}  // namespace dubhe::tensor
