#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace dubhe::tensor {

/// C = A @ B with optional transposes. A is [m, k] (or [k, m] when
/// transpose_a), B is [k, n] (or [n, k] when transpose_b), C is [m, n].
/// Runs on the packed-microkernel GEMM (AVX2+FMA or portable scalar, see
/// tensor/simd.hpp), sharded over the shared core::ParallelRuntime with
/// contiguous partitions — results are identical for any thread count.
/// Throws std::invalid_argument on shape mismatch.
Tensor matmul(const Tensor& a, const Tensor& b, bool transpose_a = false,
              bool transpose_b = false);

/// matmul with the bias row broadcast fused into the GEMM epilogue:
/// C = A @ B + bias (bias length n, added to every row).
Tensor matmul_bias(const Tensor& a, const Tensor& b, std::span<const float> bias,
                   bool transpose_a = false, bool transpose_b = false);

/// Fully fused dense-layer forward: C = relu(A @ B + bias). `relu_mask` is
/// resized to [m, n] and receives the 0/1 backward mask (1 where the
/// pre-clamp value was > 0), matching relu_inplace's convention.
Tensor matmul_bias_relu(const Tensor& a, const Tensor& b,
                        std::span<const float> bias, Tensor& relu_mask,
                        bool transpose_a = false, bool transpose_b = false);

/// y += row broadcast over the batch dimension: x is [batch, n], bias is n.
void add_bias_rows(Tensor& x, std::span<const float> bias);

/// Column sums of a [batch, n] tensor into `out` (size n) — the bias grad.
void sum_rows(const Tensor& x, std::span<float> out);

/// In-place ReLU; returns a 0/1 mask tensor for the backward pass.
Tensor relu_inplace(Tensor& x);
/// Allocation-reusing variant: `mask` is resized to x's shape in place.
void relu_inplace(Tensor& x, Tensor& mask);
/// grad_in = grad_out * mask (elementwise).
Tensor relu_backward(const Tensor& grad_out, const Tensor& mask);
/// In-place variant: grad *= mask.
void relu_backward_inplace(Tensor& grad, const Tensor& mask);

/// a += s * b (elementwise, flattened). Sizes must match.
void axpy(Tensor& a, float s, const Tensor& b);

}  // namespace dubhe::tensor
