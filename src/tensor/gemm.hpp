#pragma once

#include <cstddef>

namespace dubhe::tensor {

/// Low-level packed-microkernel GEMM over raw row-major buffers:
///
///   C[m, n] = op(A) @ op(B)   (+ bias row broadcast)   (then ReLU)
///
/// op(A) is [m, k]: the stored matrix has leading dimension `lda` and is
/// read transposed when `ta` (A(i, kk) = a[kk * lda + i]); same for B. C is
/// [m, n] with leading dimension n and is fully overwritten. `bias`
/// (nullable) has length n and is added to every row. With `relu` the
/// post-bias value is clamped at zero; `relu_mask` (nullable, [m, n])
/// receives 1.0f where the pre-clamp value was > 0 and 0.0f elsewhere —
/// exactly the backward-pass mask relu_inplace produces.
///
/// Operands are packed into panels and the 8-row register-blocked
/// microkernel (AVX2+FMA when compiled in and simd_enabled(), portable
/// scalar otherwise) runs over row panels distributed via
/// core::parallel_for. Partitions are contiguous and every output element
/// is written by exactly one shard from one globally packed B, so results
/// are bit-identical for any thread count.
void gemm(std::size_t m, std::size_t n, std::size_t k, const float* a,
          std::size_t lda, bool ta, const float* b, std::size_t ldb, bool tb,
          float* c, const float* bias = nullptr, bool relu = false,
          float* relu_mask = nullptr);

/// Caps the shard count the compute kernels (gemm, im2col/col2im) hand to
/// core::parallel_for: 0 (the default) means "all runtime workers", 1 forces
/// inline serial execution. Process-global and atomic; returns the previous
/// value. Results do not depend on this setting, only wall-clock does.
std::size_t set_compute_threads(std::size_t threads);
[[nodiscard]] std::size_t compute_threads();

/// Minimum multiply-add count (m * n * k, or the analogous volume for other
/// kernels) below which the compute kernels stay serial: one pool round-trip
/// costs more than the work itself for the FL models' smallest layers.
inline constexpr std::size_t kParallelFlopCutoff = std::size_t{1} << 17;

}  // namespace dubhe::tensor
