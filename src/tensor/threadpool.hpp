#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dubhe::tensor {

/// Fixed-size worker pool. The FL round loop uses this to train the K
/// selected clients concurrently (the paper runs participating clients as
/// parallel processes); work items are whole client-training closures, so
/// contention on the queue is negligible.
class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);
  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace dubhe::tensor
