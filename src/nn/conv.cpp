#include "nn/conv.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/parallel.hpp"
#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace dubhe::nn {

namespace {

/// Shard count for the im2col/col2im loops: one shard per batch image —
/// images touch disjoint input/column rows, so any shard count produces
/// identical results — serial below the same work cutoff the GEMM uses.
std::size_t conv_threads(std::size_t work) {
  return work >= tensor::kParallelFlopCutoff ? tensor::compute_threads() : 1;
}

/// im2col for stride-1 convolution into `cols` ([B*OH*OW, C*K*K],
/// pre-sized). Every element, including zero padding, is written.
void im2col(const Tensor& x, std::size_t k, std::size_t pad, Tensor& cols) {
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H + 2 * pad - k + 1, OW = W + 2 * pad - k + 1;
  const float* in = x.data();
  float* out = cols.data();
  const std::size_t row_len = C * k * k;
  core::parallel_for(B, conv_threads(B * OH * OW * row_len), [&](std::size_t b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        float* row = out + ((b * OH + oh) * OW + ow) * row_len;
        for (std::size_t ci = 0; ci < C; ++ci) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(pad);
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow + kw) - static_cast<std::ptrdiff_t>(pad);
              float v = 0;
              if (ih >= 0 && iw >= 0 && ih < static_cast<std::ptrdiff_t>(H) &&
                  iw < static_cast<std::ptrdiff_t>(W)) {
                v = in[((b * C + ci) * H + static_cast<std::size_t>(ih)) * W +
                       static_cast<std::size_t>(iw)];
              }
              row[(ci * k + kh) * k + kw] = v;
            }
          }
        }
      }
    }
  });
}

/// Scatter-accumulate of column gradients back to the input layout.
Tensor col2im(const Tensor& dcols, const std::vector<std::size_t>& x_shape,
              std::size_t k, std::size_t pad) {
  const std::size_t B = x_shape[0], C = x_shape[1], H = x_shape[2], W = x_shape[3];
  const std::size_t OH = H + 2 * pad - k + 1, OW = W + 2 * pad - k + 1;
  Tensor dx{{B, C, H, W}};
  float* out = dx.data();
  const float* in = dcols.data();
  const std::size_t row_len = C * k * k;
  core::parallel_for(B, conv_threads(B * OH * OW * row_len), [&](std::size_t b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        const float* row = in + ((b * OH + oh) * OW + ow) * row_len;
        for (std::size_t ci = 0; ci < C; ++ci) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(pad);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow + kw) - static_cast<std::ptrdiff_t>(pad);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
              out[((b * C + ci) * H + static_cast<std::size_t>(ih)) * W +
                  static_cast<std::size_t>(iw)] += row[(ci * k + kh) * k + kw];
            }
          }
        }
      }
    }
  });
  return dx;
}

/// [B*OH*OW, cout] -> [B, cout, OH, OW].
Tensor rows_to_nchw(const Tensor& mat, std::size_t B, std::size_t cout, std::size_t OH,
                    std::size_t OW) {
  Tensor out{{B, cout, OH, OW}};
  const float* in = mat.data();
  float* o = out.data();
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        const float* row = in + ((b * OH + oh) * OW + ow) * cout;
        for (std::size_t co = 0; co < cout; ++co) {
          o[((b * cout + co) * OH + oh) * OW + ow] = row[co];
        }
      }
    }
  }
  return out;
}

/// [B, cout, OH, OW] -> [B*OH*OW, cout] into `rows` (pre-sized).
void nchw_to_rows(const Tensor& x, Tensor& rows) {
  const std::size_t B = x.dim(0), cout = x.dim(1), OH = x.dim(2), OW = x.dim(3);
  const float* in = x.data();
  float* o = rows.data();
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          o[((b * OH + oh) * OW + ow) * cout + co] =
              in[((b * cout + co) * OH + oh) * OW + ow];
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, std::uint64_t init_seed)
    : cin_(in_channels), cout_(out_channels), k_(kernel), pad_(padding) {
  if (cin_ == 0 || cout_ == 0 || k_ == 0) throw std::invalid_argument("Conv2d: zero dim");
  const std::size_t wsize = cout_ * cin_ * k_ * k_;
  params_.assign(wsize + cout_, 0.0f);
  grads_.assign(params_.size(), 0.0f);
  stats::Rng rng(init_seed);
  const auto limit =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(cin_ * k_ * k_)));
  for (std::size_t i = 0; i < wsize; ++i) {
    params_[i] = limit * (2.0f * static_cast<float>(rng.uniform()) - 1.0f);
  }
}

// Workspace slots: 0 = im2col columns (forward, reread by backward),
// 1 = forward output rows, 2 = gradient rows, 3 = column gradients.

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != cin_) throw std::invalid_argument("Conv2d: bad input");
  const std::size_t B = x.dim(0), OH = out_spatial(x.dim(2)), OW = out_spatial(x.dim(3));
  const std::size_t ckk = cin_ * k_ * k_;
  const std::size_t rows = B * OH * OW;
  last_shape_ = x.shape();

  Tensor& cols = scratch().get(this, 0, {rows, ckk});
  im2col(x, k_, pad_, cols);

  // out = cols @ W^T + bias, with W read in place from params_ ([cout, ckk]
  // row-major) and the bias add fused into the GEMM epilogue.
  Tensor& out_mat = scratch().get(this, 1, {rows, cout_});
  tensor::gemm(rows, cout_, ckk, cols.data(), ckk, false, params_.data(), ckk,
               /*tb=*/true, out_mat.data(), /*bias=*/params_.data() + cout_ * ckk);
  return rows_to_nchw(out_mat, B, cout_, OH, OW);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t ckk = cin_ * k_ * k_;
  const std::size_t wsize = cout_ * ckk;
  const std::size_t rows = grad_out.size() / cout_;

  Tensor& g = scratch().get(this, 2, {rows, cout_});  // [B*OH*OW, cout]
  nchw_to_rows(grad_out, g);

  // dW = g^T cols, straight into the grads_ weight block; db = column sums.
  const Tensor& cols = scratch().peek(this, 0);
  if (cols.rank() != 2 || cols.dim(0) != rows || cols.dim(1) != ckk) {
    throw std::invalid_argument("Conv2d: backward without matching forward");
  }
  tensor::gemm(cout_, ckk, rows, g.data(), cout_, /*ta=*/true, cols.data(), ckk,
               false, grads_.data());
  tensor::sum_rows(g, {grads_.data() + wsize, cout_});

  Tensor& dcols = scratch().get(this, 3, {rows, ckk});  // [B*OH*OW, cin k k]
  tensor::gemm(rows, ckk, cout_, g.data(), cout_, false, params_.data(), ckk, false,
               dcols.data());
  return col2im(dcols, last_shape_, k_, pad_);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(2) % 2 != 0 || x.dim(3) % 2 != 0) {
    throw std::invalid_argument("MaxPool2d: needs [B,C,even,even]");
  }
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  in_shape_ = x.shape();
  Tensor y{{B, C, H / 2, W / 2}};
  argmax_.assign(y.size(), 0);
  const float* in = x.data();
  float* out = y.data();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t c = 0; c < C; ++c) {
      const float* plane = in + (b * C + c) * H * W;
      for (std::size_t oh = 0; oh < H / 2; ++oh) {
        for (std::size_t ow = 0; ow < W / 2; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dh = 0; dh < 2; ++dh) {
            for (std::size_t dw = 0; dw < 2; ++dw) {
              const std::size_t idx = (oh * 2 + dh) * W + (ow * 2 + dw);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = (b * C + c) * H * W + idx;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor dx{in_shape_};
  const float* g = grad_out.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) out[argmax_[i]] += g[i];
  return dx;
}

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace dubhe::nn
