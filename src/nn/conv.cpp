#include "nn/conv.hpp"
#include <algorithm>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/rng.hpp"
#include "tensor/ops.hpp"

namespace dubhe::nn {

namespace {

/// im2col for stride-1 convolution: returns [B*OH*OW, C*K*K].
Tensor im2col(const Tensor& x, std::size_t k, std::size_t pad) {
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H + 2 * pad - k + 1, OW = W + 2 * pad - k + 1;
  Tensor cols{{B * OH * OW, C * k * k}};
  const float* in = x.data();
  float* out = cols.data();
  const std::size_t row_len = C * k * k;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        float* row = out + ((b * OH + oh) * OW + ow) * row_len;
        for (std::size_t ci = 0; ci < C; ++ci) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(pad);
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow + kw) - static_cast<std::ptrdiff_t>(pad);
              float v = 0;
              if (ih >= 0 && iw >= 0 && ih < static_cast<std::ptrdiff_t>(H) &&
                  iw < static_cast<std::ptrdiff_t>(W)) {
                v = in[((b * C + ci) * H + static_cast<std::size_t>(ih)) * W +
                       static_cast<std::size_t>(iw)];
              }
              row[(ci * k + kh) * k + kw] = v;
            }
          }
        }
      }
    }
  }
  return cols;
}

/// Scatter-accumulate of column gradients back to the input layout.
Tensor col2im(const Tensor& dcols, const std::vector<std::size_t>& x_shape,
              std::size_t k, std::size_t pad) {
  const std::size_t B = x_shape[0], C = x_shape[1], H = x_shape[2], W = x_shape[3];
  const std::size_t OH = H + 2 * pad - k + 1, OW = W + 2 * pad - k + 1;
  Tensor dx{{B, C, H, W}};
  float* out = dx.data();
  const float* in = dcols.data();
  const std::size_t row_len = C * k * k;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        const float* row = in + ((b * OH + oh) * OW + ow) * row_len;
        for (std::size_t ci = 0; ci < C; ++ci) {
          for (std::size_t kh = 0; kh < k; ++kh) {
            const std::ptrdiff_t ih =
                static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(pad);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
            for (std::size_t kw = 0; kw < k; ++kw) {
              const std::ptrdiff_t iw =
                  static_cast<std::ptrdiff_t>(ow + kw) - static_cast<std::ptrdiff_t>(pad);
              if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
              out[((b * C + ci) * H + static_cast<std::size_t>(ih)) * W +
                  static_cast<std::size_t>(iw)] += row[(ci * k + kh) * k + kw];
            }
          }
        }
      }
    }
  }
  return dx;
}

/// [B*OH*OW, cout] -> [B, cout, OH, OW].
Tensor rows_to_nchw(const Tensor& mat, std::size_t B, std::size_t cout, std::size_t OH,
                    std::size_t OW) {
  Tensor out{{B, cout, OH, OW}};
  const float* in = mat.data();
  float* o = out.data();
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow) {
        const float* row = in + ((b * OH + oh) * OW + ow) * cout;
        for (std::size_t co = 0; co < cout; ++co) {
          o[((b * cout + co) * OH + oh) * OW + ow] = row[co];
        }
      }
    }
  }
  return out;
}

/// [B, cout, OH, OW] -> [B*OH*OW, cout].
Tensor nchw_to_rows(const Tensor& x) {
  const std::size_t B = x.dim(0), cout = x.dim(1), OH = x.dim(2), OW = x.dim(3);
  Tensor out{{B * OH * OW, cout}};
  const float* in = x.data();
  float* o = out.data();
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t co = 0; co < cout; ++co) {
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          o[((b * OH + oh) * OW + ow) * cout + co] =
              in[((b * cout + co) * OH + oh) * OW + ow];
        }
      }
    }
  }
  return out;
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t padding, std::uint64_t init_seed)
    : cin_(in_channels), cout_(out_channels), k_(kernel), pad_(padding) {
  if (cin_ == 0 || cout_ == 0 || k_ == 0) throw std::invalid_argument("Conv2d: zero dim");
  const std::size_t wsize = cout_ * cin_ * k_ * k_;
  params_.assign(wsize + cout_, 0.0f);
  grads_.assign(params_.size(), 0.0f);
  stats::Rng rng(init_seed);
  const auto limit =
      static_cast<float>(std::sqrt(6.0 / static_cast<double>(cin_ * k_ * k_)));
  for (std::size_t i = 0; i < wsize; ++i) {
    params_[i] = limit * (2.0f * static_cast<float>(rng.uniform()) - 1.0f);
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != cin_) throw std::invalid_argument("Conv2d: bad input");
  const std::size_t B = x.dim(0), OH = out_spatial(x.dim(2)), OW = out_spatial(x.dim(3));
  last_shape_ = x.shape();
  last_cols_ = im2col(x, k_, pad_);

  Tensor w_mat{{cout_, cin_ * k_ * k_}};
  std::copy_n(params_.data(), w_mat.size(), w_mat.data());
  Tensor out_mat = tensor::matmul(last_cols_, w_mat, false, /*transpose_b=*/true);
  tensor::add_bias_rows(out_mat, {params_.data() + w_mat.size(), cout_});
  return rows_to_nchw(out_mat, B, cout_, OH, OW);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor g = nchw_to_rows(grad_out);  // [B*OH*OW, cout]
  const std::size_t wsize = cout_ * cin_ * k_ * k_;

  const Tensor dw = tensor::matmul(g, last_cols_, /*transpose_a=*/true);  // [cout, cin k k]
  std::copy_n(dw.data(), wsize, grads_.data());
  tensor::sum_rows(g, {grads_.data() + wsize, cout_});

  Tensor w_mat{{cout_, cin_ * k_ * k_}};
  std::copy_n(params_.data(), wsize, w_mat.data());
  const Tensor dcols = tensor::matmul(g, w_mat);  // [B*OH*OW, cin k k]
  return col2im(dcols, last_shape_, k_, pad_);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(2) % 2 != 0 || x.dim(3) % 2 != 0) {
    throw std::invalid_argument("MaxPool2d: needs [B,C,even,even]");
  }
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  in_shape_ = x.shape();
  Tensor y{{B, C, H / 2, W / 2}};
  argmax_.assign(y.size(), 0);
  const float* in = x.data();
  float* out = y.data();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < B; ++b) {
    for (std::size_t c = 0; c < C; ++c) {
      const float* plane = in + (b * C + c) * H * W;
      for (std::size_t oh = 0; oh < H / 2; ++oh) {
        for (std::size_t ow = 0; ow < W / 2; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dh = 0; dh < 2; ++dh) {
            for (std::size_t dw = 0; dw < 2; ++dw) {
              const std::size_t idx = (oh * 2 + dh) * W + (ow * 2 + dw);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = (b * C + c) * H * W + idx;
              }
            }
          }
          out[oi] = best;
          argmax_[oi] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor dx{in_shape_};
  const float* g = grad_out.data();
  float* out = dx.data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) out[argmax_[i]] += g[i];
  return dx;
}

Tensor Flatten::forward(const Tensor& x) {
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace dubhe::nn
