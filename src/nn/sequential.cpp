#include "nn/sequential.hpp"
#include <algorithm>

#include <stdexcept>

namespace dubhe::nn {

Sequential::Sequential(const Sequential& o) {
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) {
    layers_.push_back(l->clone());
    layers_.back()->attach_workspace(ws_.get());
  }
}

Sequential& Sequential::operator=(const Sequential& o) {
  if (this == &o) return *this;
  layers_.clear();
  ws_ = std::make_unique<Workspace>();  // drop buffers keyed by dead layers
  layers_.reserve(o.layers_.size());
  for (const auto& l : o.layers_) {
    layers_.push_back(l->clone());
    layers_.back()->attach_workspace(ws_.get());
  }
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layer->attach_workspace(ws_.get());
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur);
  return cur;
}

void Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) cur = layers_[i]->backward(cur);
}

void Sequential::set_training(bool training) {
  for (auto& l : layers_) l->set_training(training);
}

std::size_t Sequential::num_params() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    n += const_cast<Layer&>(*l).params().size();  // params() is logically const
  }
  return n;
}

std::vector<std::span<float>> Sequential::param_views() {
  std::vector<std::span<float>> out;
  for (auto& l : layers_) {
    const auto p = l->params();
    if (!p.empty()) out.push_back(p);
  }
  return out;
}

std::vector<std::span<float>> Sequential::grad_views() {
  std::vector<std::span<float>> out;
  for (auto& l : layers_) {
    const auto g = l->grads();
    if (!g.empty()) out.push_back(g);
  }
  return out;
}

std::vector<float> Sequential::get_weights() const {
  std::vector<float> w;
  w.reserve(num_params());
  for (const auto& l : layers_) {
    const auto p = const_cast<Layer&>(*l).params();
    w.insert(w.end(), p.begin(), p.end());
  }
  return w;
}

void Sequential::set_weights(std::span<const float> w) {
  if (w.size() != num_params()) throw std::invalid_argument("set_weights: size mismatch");
  std::size_t off = 0;
  for (auto& l : layers_) {
    const auto p = l->params();
    std::copy_n(w.data() + off, p.size(), p.data());
    off += p.size();
  }
}

}  // namespace dubhe::nn
