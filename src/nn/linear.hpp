#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace dubhe::nn {

/// Fully connected layer: y = x W + b, x is [batch, in], W is [in, out].
/// He-uniform initialization (suits the ReLU nets used throughout).
class Linear final : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, std::uint64_t init_seed);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::span<float> params() override { return params_; }
  std::span<float> grads() override { return grads_; }
  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Linear>(*this);
  }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  // params_ layout: W (in*out, row-major [in][out]) followed by b (out).
  // The GEMMs read W in place; the forward input is cached in the
  // workspace (slot 0) for the backward pass.
  std::size_t in_, out_;
  std::vector<float> params_, grads_;
};

}  // namespace dubhe::nn
