#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace dubhe::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, std::uint64_t init_seed)
    : in_(in_features), out_(out_features) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Linear: zero dimension");
  params_.assign(in_ * out_ + out_, 0.0f);
  grads_.assign(params_.size(), 0.0f);
  // He-uniform: U(-limit, limit) with limit = sqrt(6 / fan_in).
  stats::Rng rng(init_seed);
  const auto limit = static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_)));
  for (std::size_t i = 0; i < in_ * out_; ++i) {
    params_[i] = limit * (2.0f * static_cast<float>(rng.uniform()) - 1.0f);
  }
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) throw std::invalid_argument("Linear: bad input");
  // The cached input reuses its prior allocation (Tensor copy assignment is
  // vector-backed); the weight matrix feeds the GEMM straight from params_
  // ([in][out] row-major) with the bias add fused into the epilogue.
  Tensor& cached = scratch().peek(this, 0);
  cached = x;
  const std::size_t batch = x.dim(0);
  Tensor y{{batch, out_}};
  tensor::gemm(batch, out_, in_, x.data(), in_, false, params_.data(), out_, false,
               y.data(), /*bias=*/params_.data() + in_ * out_);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const Tensor& cached = scratch().peek(this, 0);
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_ ||
      grad_out.dim(0) != cached.dim(0)) {
    throw std::invalid_argument("Linear: bad grad shape");
  }
  const std::size_t batch = cached.dim(0);
  // dW = x^T grad_out, written straight into the grads_ weight block;
  // db = column sums; dx = grad_out W^T.
  tensor::gemm(in_, out_, batch, cached.data(), in_, /*ta=*/true, grad_out.data(),
               out_, false, grads_.data());
  tensor::sum_rows(grad_out, {grads_.data() + in_ * out_, out_});

  Tensor dx{{batch, in_}};
  tensor::gemm(batch, in_, out_, grad_out.data(), out_, false, params_.data(), out_,
               /*tb=*/true, dx.data());
  return dx;
}

}  // namespace dubhe::nn
