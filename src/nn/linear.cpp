#include "nn/linear.hpp"
#include <algorithm>

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"
#include "tensor/ops.hpp"

namespace dubhe::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, std::uint64_t init_seed)
    : in_(in_features), out_(out_features) {
  if (in_ == 0 || out_ == 0) throw std::invalid_argument("Linear: zero dimension");
  params_.assign(in_ * out_ + out_, 0.0f);
  grads_.assign(params_.size(), 0.0f);
  // He-uniform: U(-limit, limit) with limit = sqrt(6 / fan_in).
  stats::Rng rng(init_seed);
  const auto limit = static_cast<float>(std::sqrt(6.0 / static_cast<double>(in_)));
  for (std::size_t i = 0; i < in_ * out_; ++i) {
    params_[i] = limit * (2.0f * static_cast<float>(rng.uniform()) - 1.0f);
  }
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) throw std::invalid_argument("Linear: bad input");
  last_input_ = x;
  Tensor w_view{{in_, out_}};
  std::copy_n(params_.data(), in_ * out_, w_view.data());
  Tensor y = tensor::matmul(x, w_view);
  tensor::add_bias_rows(y, {params_.data() + in_ * out_, out_});
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_ ||
      grad_out.dim(0) != last_input_.dim(0)) {
    throw std::invalid_argument("Linear: bad grad shape");
  }
  // dW = x^T grad_out; db = column sums; dx = grad_out W^T.
  const Tensor dw = tensor::matmul(last_input_, grad_out, /*transpose_a=*/true);
  std::copy_n(dw.data(), in_ * out_, grads_.data());
  tensor::sum_rows(grad_out, {grads_.data() + in_ * out_, out_});

  Tensor w_view{{in_, out_}};
  std::copy_n(params_.data(), in_ * out_, w_view.data());
  return tensor::matmul(grad_out, w_view, /*transpose_a=*/false, /*transpose_b=*/true);
}

}  // namespace dubhe::nn
