#pragma once

#include <map>
#include <span>
#include <utility>

#include "tensor/tensor.hpp"

namespace dubhe::nn {

/// Scratch-buffer arena shared by the layers of one model replica.
///
/// Every forward/backward temporary that used to be allocated per step —
/// im2col column matrices, ReLU/dropout masks, row-major gradient staging
/// buffers, cached inputs — lives here instead, keyed by (owning layer,
/// slot) and resized in place, so after the first step of a client round
/// the training loop performs no per-step heap allocation for scratch.
///
/// One arena belongs to exactly one Sequential (or, for a detached layer,
/// to that layer); model replicas training concurrently on the shared
/// runtime each own their own arena, so there is no cross-thread sharing.
/// Entries persist for the arena's lifetime — a mask written in forward is
/// read back by the same layer's backward.
class Workspace {
 public:
  /// The buffer for (owner, slot), resized to `shape` with contents
  /// unspecified (callers fully overwrite, or fill() explicitly). The
  /// reference stays valid until the arena is destroyed.
  tensor::Tensor& get(const void* owner, int slot,
                      std::span<const std::size_t> shape) {
    tensor::Tensor& t = buffers_[{owner, slot}];
    t.resize(shape);
    return t;
  }
  tensor::Tensor& get(const void* owner, int slot,
                      std::initializer_list<std::size_t> shape) {
    return get(owner, slot,
               std::span<const std::size_t>(shape.begin(), shape.size()));
  }

  /// The buffer for (owner, slot) with whatever shape it last had; creates
  /// a fresh empty tensor on first use. For buffers written by one call and
  /// read by a later one (cached activations, masks).
  tensor::Tensor& peek(const void* owner, int slot) { return buffers_[{owner, slot}]; }

  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }

 private:
  std::map<std::pair<const void*, int>, tensor::Tensor> buffers_;
};

}  // namespace dubhe::nn
