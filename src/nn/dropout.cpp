#include "nn/dropout.hpp"

#include <stdexcept>

namespace dubhe::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || rate_ == 0.0) {
    mask_active_ = false;
    return x;
  }
  // The mask reuses its allocation across steps (also across eval/train
  // flips — eval only lowers the flag); every element is written
  // (keep_scale or 0), so no zero-fill is needed after the resize.
  mask_active_ = true;
  mask_.resize(x.shape());
  Tensor y = x;
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  float* yd = y.data();
  float* md = mask_.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (rng_.uniform() < rate_) {
      yd[i] = 0.0f;
      md[i] = 0.0f;
    } else {
      yd[i] *= keep_scale;
      md[i] = keep_scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!mask_active_) return grad_out;  // eval mode or rate 0
  if (grad_out.size() != mask_.size()) {
    throw std::invalid_argument("Dropout: grad shape mismatch");
  }
  Tensor g = grad_out;
  float* gd = g.data();
  const float* md = mask_.data();
  for (std::size_t i = 0; i < g.size(); ++i) gd[i] *= md[i];
  return g;
}

}  // namespace dubhe::nn
