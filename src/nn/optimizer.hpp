#pragma once

#include <span>
#include <vector>

namespace dubhe::nn {

/// Optimizer over a model's parameter/gradient span lists (as produced by
/// Sequential::param_views / grad_views). State (e.g. Adam moments) is keyed
/// by position, so the same optimizer must always be stepped with the same
/// model.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<std::span<float>>& params,
                    const std::vector<std::span<float>>& grads) = 0;
};

/// Plain SGD with optional weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double weight_decay = 0.0) : lr_(lr), wd_(weight_decay) {}
  void step(const std::vector<std::span<float>>& params,
            const std::vector<std::span<float>>& grads) override;

 private:
  double lr_, wd_;
};

/// Adam (Kingma & Ba). The paper's local optimizer: lr = 1e-4, no weight
/// decay, default betas.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);
  void step(const std::vector<std::span<float>>& params,
            const std::vector<std::span<float>>& grads) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace dubhe::nn
