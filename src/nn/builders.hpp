#pragma once

#include <cstdint>

#include "nn/sequential.hpp"

namespace dubhe::nn {

/// Two-layer MLP head used for the MNIST/CIFAR-like experiments:
/// Linear(F, hidden) -> ReLU -> Linear(hidden, C).
Sequential make_mlp(std::size_t feature_dim, std::size_t hidden, std::size_t num_classes,
                    std::uint64_t seed);

/// Small CNN in the spirit of the paper's MNIST model (Reddi et al.):
/// Conv(1->8, 3x3, pad 1) -> ReLU -> MaxPool2 -> Conv(8->16, 3x3, pad 1) ->
/// ReLU -> MaxPool2 -> Flatten -> Linear -> ReLU -> Linear(C).
/// Input is [batch, 1, side, side]; side must be divisible by 4.
Sequential make_cnn(std::size_t side, std::size_t num_classes, std::uint64_t seed);

}  // namespace dubhe::nn
