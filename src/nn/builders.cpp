#include "nn/builders.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "stats/rng.hpp"

namespace dubhe::nn {

Sequential make_mlp(std::size_t feature_dim, std::size_t hidden, std::size_t num_classes,
                    std::uint64_t seed) {
  Sequential m;
  m.add(std::make_unique<Linear>(feature_dim, hidden, stats::derive_seed(seed, 1)));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(hidden, num_classes, stats::derive_seed(seed, 2)));
  return m;
}

Sequential make_cnn(std::size_t side, std::size_t num_classes, std::uint64_t seed) {
  if (side % 4 != 0) throw std::invalid_argument("make_cnn: side must be divisible by 4");
  Sequential m;
  m.add(std::make_unique<Conv2d>(1, 8, 3, 1, stats::derive_seed(seed, 1)));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Conv2d>(8, 16, 3, 1, stats::derive_seed(seed, 2)));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Flatten>());
  const std::size_t flat = 16 * (side / 4) * (side / 4);
  m.add(std::make_unique<Linear>(flat, 64, stats::derive_seed(seed, 3)));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Linear>(64, num_classes, stats::derive_seed(seed, 4)));
  return m;
}

}  // namespace dubhe::nn
