#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"

namespace dubhe::nn {

/// 2-D convolution via im2col + GEMM. Input [batch, C_in, H, W], kernel
/// [C_out, C_in, K, K], stride 1, symmetric zero padding. Small and direct —
/// the paper's CNN models are tiny by modern standards and this runs them on
/// CPU comfortably.
class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t padding, std::uint64_t init_seed);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::span<float> params() override { return params_; }
  std::span<float> grads() override { return grads_; }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

 private:
  [[nodiscard]] std::size_t out_spatial(std::size_t in) const {
    return in + 2 * pad_ - k_ + 1;
  }

  std::size_t cin_, cout_, k_, pad_;
  std::vector<float> params_, grads_;  // kernel then bias(cout)
  std::vector<std::size_t> last_shape_;  // im2col columns live in the workspace
};

/// 2x2 max pooling, stride 2. Input [batch, C, H, W] with even H and W.
class MaxPool2d final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  std::vector<std::size_t> argmax_;
  std::vector<std::size_t> in_shape_;
};

/// Collapses [batch, ...] to [batch, features].
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace dubhe::nn
