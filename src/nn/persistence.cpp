#include "nn/persistence.hpp"

#include <cstring>
#include <fstream>

namespace dubhe::nn {

namespace {
constexpr char kMagic[8] = {'D', 'U', 'B', 'H', 'E', 'W', 'T', '1'};
}  // namespace

bool save_weights(const std::string& path, const Sequential& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  const std::vector<float> w = model.get_weights();
  const std::uint64_t count = w.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(w.data()),
            static_cast<std::streamsize>(w.size() * sizeof(float)));
  return out.good();
}

bool load_weights(const std::string& path, Sequential& model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || count != model.num_params()) return false;
  std::vector<float> w(count);
  in.read(reinterpret_cast<char*>(w.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) return false;
  model.set_weights(w);
  return true;
}

}  // namespace dubhe::nn
