#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace dubhe::nn {

/// A feed-forward stack of layers. The model's parameters are exposed as a
/// single flat float vector (get_weights / set_weights), which is the
/// contract the FedAvg aggregator and the optimizers build on.
class Sequential {
 public:
  Sequential() = default;
  Sequential(const Sequential& o);
  Sequential& operator=(const Sequential& o);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  Sequential& add(std::unique_ptr<Layer> layer);

  [[nodiscard]] Tensor forward(const Tensor& x);
  /// Runs the full backward pass; parameter gradients are left in the
  /// layers, readable via grad_views().
  void backward(const Tensor& grad_out);

  /// Total parameter count.
  [[nodiscard]] std::size_t num_params() const;
  /// Per-layer parameter views (empty spans excluded).
  [[nodiscard]] std::vector<std::span<float>> param_views();
  [[nodiscard]] std::vector<std::span<float>> grad_views();

  /// Flattened copy of all parameters.
  [[nodiscard]] std::vector<float> get_weights() const;
  /// Loads flattened parameters; size must equal num_params().
  void set_weights(std::span<const float> w);

  /// Puts every layer in train or eval mode (Dropout et al.).
  void set_training(bool training);

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// The scratch arena shared by this model's layers (heap-held so the
  /// address layers bind to survives moves of the Sequential itself).
  [[nodiscard]] Workspace& workspace() { return *ws_; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<Workspace> ws_ = std::make_unique<Workspace>();
};

}  // namespace dubhe::nn
