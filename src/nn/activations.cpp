#include "nn/activations.hpp"

#include "tensor/ops.hpp"

namespace dubhe::nn {

Tensor ReLU::forward(const Tensor& x) {
  Tensor y = x;
  mask_ = tensor::relu_inplace(y);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  return tensor::relu_backward(grad_out, mask_);
}

}  // namespace dubhe::nn
