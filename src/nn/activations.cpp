#include "nn/activations.hpp"

#include "tensor/ops.hpp"

namespace dubhe::nn {

// Workspace slot 0 holds the 0/1 mask, written by forward and reread by
// backward, so repeated steps reuse one allocation.

Tensor ReLU::forward(const Tensor& x) {
  Tensor y = x;
  tensor::relu_inplace(y, scratch().peek(this, 0));
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  tensor::relu_backward_inplace(g, scratch().peek(this, 0));
  return g;
}

}  // namespace dubhe::nn
