#pragma once

#include <string>

#include "nn/sequential.hpp"

namespace dubhe::nn {

/// Saves a model's flat weights to a binary file: an 8-byte magic
/// ("DUBHEWT1"), an 8-byte little-endian parameter count, then raw floats.
/// Returns false on I/O error (nothing or a partial file may remain).
bool save_weights(const std::string& path, const Sequential& model);

/// Loads weights saved by save_weights into `model`. Fails (returns false)
/// on missing file, bad magic, or a parameter-count mismatch with the model
/// architecture — a mismatch never partially mutates the model.
bool load_weights(const std::string& path, Sequential& model);

}  // namespace dubhe::nn
