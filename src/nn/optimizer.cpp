#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace dubhe::nn {

void Sgd::step(const std::vector<std::span<float>>& params,
               const std::vector<std::span<float>>& grads) {
  if (params.size() != grads.size()) throw std::invalid_argument("Sgd: view mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i];
    auto g = grads[i];
    if (p.size() != g.size()) throw std::invalid_argument("Sgd: span size mismatch");
    for (std::size_t j = 0; j < p.size(); ++j) {
      p[j] -= static_cast<float>(lr_ * (g[j] + wd_ * p[j]));
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<std::span<float>>& params,
                const std::vector<std::span<float>>& grads) {
  if (params.size() != grads.size()) throw std::invalid_argument("Adam: view mismatch");
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i].size(), 0.0f);
      v_[i].assign(params[i].size(), 0.0f);
    }
  }
  if (m_.size() != params.size()) throw std::invalid_argument("Adam: model changed");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i];
    auto g = grads[i];
    if (p.size() != m_[i].size()) throw std::invalid_argument("Adam: span size changed");
    for (std::size_t j = 0; j < p.size(); ++j) {
      const double gj = g[j];
      m_[i][j] = static_cast<float>(beta1_ * m_[i][j] + (1 - beta1_) * gj);
      v_[i][j] = static_cast<float>(beta2_ * v_[i][j] + (1 - beta2_) * gj * gj);
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      p[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace dubhe::nn
