#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace dubhe::nn {

/// Softmax cross-entropy over a batch of logits [batch, C] against integer
/// labels (the paper's loss for all three classification tasks).
struct LossResult {
  double loss = 0;            // mean over the batch
  double accuracy = 0;        // top-1
  tensor::Tensor grad;        // d(mean loss)/d(logits), [batch, C]
};

/// Computes loss, accuracy and the logits gradient in one pass. Throws
/// std::invalid_argument on shape mismatch or a label >= C.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::size_t> labels);

/// Accuracy only (evaluation path, no gradient allocation).
double top1_accuracy(const tensor::Tensor& logits, std::span<const std::size_t> labels);

}  // namespace dubhe::nn
