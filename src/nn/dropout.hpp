#pragma once

#include <cstdint>

#include "nn/layer.hpp"
#include "stats/rng.hpp"

namespace dubhe::nn {

/// Inverted dropout (the regularizer in the paper's reference CNNs, Reddi et
/// al.): during training each activation is zeroed with probability `rate`
/// and survivors are scaled by 1/(1-rate); during evaluation the layer is
/// the identity. The mask stream is seeded, so runs are reproducible, and
/// clone() copies the generator state so client model replicas draw
/// independent-but-deterministic masks.
class Dropout final : public Layer {
 public:
  /// rate in [0, 1). Throws std::invalid_argument otherwise.
  Dropout(double rate, std::uint64_t seed);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void set_training(bool training) override { training_ = training; }
  [[nodiscard]] std::string name() const override { return "Dropout"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Dropout>(*this);
  }

  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  bool training_ = true;
  bool mask_active_ = false;  // false in eval mode; mask_ keeps its storage
  stats::Rng rng_;
  Tensor mask_;
};

}  // namespace dubhe::nn
