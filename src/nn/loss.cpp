#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dubhe::nn {

namespace {
void check(const tensor::Tensor& logits, std::span<const std::size_t> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument("softmax_ce: shape mismatch");
  }
  for (const std::size_t y : labels) {
    if (y >= logits.dim(1)) throw std::invalid_argument("softmax_ce: label out of range");
  }
}
}  // namespace

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::size_t> labels) {
  check(logits, labels);
  const std::size_t B = logits.dim(0), C = logits.dim(1);
  LossResult r;
  r.grad = tensor::Tensor{{B, C}};
  const float* in = logits.data();
  float* g = r.grad.data();
  // Per-row exp scratch, reused across steps. thread_local (rather than a
  // workspace slot) because the loss is a free function called concurrently
  // by every client replica on the shared pool; each exp is computed once.
  thread_local std::vector<double> probs;
  probs.resize(C);
  std::size_t correct = 0;
  double loss_sum = 0;
  const auto inv_b = static_cast<float>(1.0 / static_cast<double>(B));
  for (std::size_t i = 0; i < B; ++i) {
    const float* row = in + i * C;
    float mx = row[0];
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < C; ++c) {
      if (row[c] > mx) {
        mx = row[c];
        argmax = c;
      }
    }
    double denom = 0;
    for (std::size_t c = 0; c < C; ++c) {
      probs[c] = std::exp(static_cast<double>(row[c] - mx));
      denom += probs[c];
    }
    const double log_denom = std::log(denom);
    const std::size_t y = labels[i];
    loss_sum += log_denom - static_cast<double>(row[y] - mx);
    if (argmax == y) ++correct;
    for (std::size_t c = 0; c < C; ++c) {
      const double p = probs[c] / denom;
      g[i * C + c] = static_cast<float>(p - (c == y ? 1.0 : 0.0)) * inv_b;
    }
  }
  r.loss = loss_sum / static_cast<double>(B);
  r.accuracy = static_cast<double>(correct) / static_cast<double>(B);
  return r;
}

double top1_accuracy(const tensor::Tensor& logits, std::span<const std::size_t> labels) {
  check(logits, labels);
  const std::size_t B = logits.dim(0), C = logits.dim(1);
  const float* in = logits.data();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < B; ++i) {
    const float* row = in + i * C;
    std::size_t argmax = 0;
    for (std::size_t c = 1; c < C; ++c) {
      if (row[c] > row[argmax]) argmax = c;
    }
    if (argmax == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(B);
}

}  // namespace dubhe::nn
