#pragma once

#include "nn/layer.hpp"

namespace dubhe::nn {

/// Rectified linear unit.
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }
  [[nodiscard]] std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }
};

}  // namespace dubhe::nn
