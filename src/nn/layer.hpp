#pragma once

#include <memory>
#include <span>
#include <string>

#include "tensor/tensor.hpp"

namespace dubhe::nn {

using tensor::Tensor;

/// A differentiable layer. `forward` may cache activations for the
/// subsequent `backward` (layers are stateful within one forward/backward
/// pair, which is all mini-batch SGD needs). Parameters and their gradients
/// are exposed as flat spans so optimizers and FedAvg aggregation can treat
/// every model as one float vector.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  /// Gradient wrt input, given gradient wrt output. Also accumulates
  /// parameter gradients (overwriting, not summing — one step per batch).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Flat parameter / gradient views; empty for parameterless layers.
  virtual std::span<float> params() { return {}; }
  virtual std::span<float> grads() { return {}; }

  /// Train/eval mode toggle. Only stochastic layers (Dropout) care; the
  /// default is a no-op so deterministic layers stay oblivious.
  virtual void set_training(bool /*training*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
  /// Deep copy (used to clone the global model into per-client replicas).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace dubhe::nn
