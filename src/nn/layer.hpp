#pragma once

#include <memory>
#include <span>
#include <string>

#include "nn/workspace.hpp"
#include "tensor/tensor.hpp"

namespace dubhe::nn {

using tensor::Tensor;

/// A differentiable layer. `forward` may cache activations for the
/// subsequent `backward` (layers are stateful within one forward/backward
/// pair, which is all mini-batch SGD needs). Parameters and their gradients
/// are exposed as flat spans so optimizers and FedAvg aggregation can treat
/// every model as one float vector.
///
/// Scratch buffers (im2col matrices, masks, staging temporaries) come from
/// a Workspace: Sequential attaches its arena to every layer it owns, so
/// replicas reuse one set of buffers across all steps of a round, and a
/// detached layer lazily creates a private arena — same reuse, no sharing.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  /// Copies (the clone() path) never carry workspace state: the clone's
  /// owner re-attaches its own arena, or the clone builds a private one.
  Layer(const Layer&) noexcept {}
  Layer& operator=(const Layer&) noexcept { return *this; }
  Layer(Layer&&) noexcept = default;
  Layer& operator=(Layer&&) noexcept = default;

  /// Binds the arena this layer's temporaries live in. The pointer must
  /// outlive the layer or be re-attached (Sequential handles both).
  void attach_workspace(Workspace* ws) { ws_ = ws; }

  virtual Tensor forward(const Tensor& x) = 0;
  /// Gradient wrt input, given gradient wrt output. Also accumulates
  /// parameter gradients (overwriting, not summing — one step per batch).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Flat parameter / gradient views; empty for parameterless layers.
  virtual std::span<float> params() { return {}; }
  virtual std::span<float> grads() { return {}; }

  /// Train/eval mode toggle. Only stochastic layers (Dropout) care; the
  /// default is a no-op so deterministic layers stay oblivious.
  virtual void set_training(bool /*training*/) {}

  [[nodiscard]] virtual std::string name() const = 0;
  /// Deep copy (used to clone the global model into per-client replicas).
  [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;

 protected:
  /// The attached arena, or a lazily created private one.
  [[nodiscard]] Workspace& scratch() {
    if (ws_ != nullptr) return *ws_;
    if (!owned_ws_) owned_ws_ = std::make_unique<Workspace>();
    return *owned_ws_;
  }

 private:
  Workspace* ws_ = nullptr;
  std::unique_ptr<Workspace> owned_ws_;
};

}  // namespace dubhe::nn
