#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multitime.hpp"
#include "core/param_search.hpp"
#include "core/selection.hpp"
#include "data/federated.hpp"
#include "fl/trainer.hpp"
#include "stats/summary.hpp"

namespace dubhe::sim {

/// The three contenders of the evaluation (paper §6.1), plus the loss-based
/// power-of-choice baseline from the related work the paper critiques
/// (§2.1/§3; training loop only — it needs the live global model).
enum class Method { kRandom, kGreedy, kDubhe, kPowerOfChoice };
[[nodiscard]] std::string to_string(Method m);

/// Sensible default thresholds for a reference set: sigma_C = 0 (mandatory),
/// sigma_1 = 0.7 and sigma_2 = 0.1 (the optimum the paper's parameter search
/// finds for G = {1, 2, 10}), 0.7/i otherwise. Benches that need exact
/// optima run core::parameter_search instead.
[[nodiscard]] std::vector<double> default_sigma(const std::vector<std::size_t>& G);

/// End-to-end accuracy experiment configuration: dataset x partition x
/// training x selection method.
struct ExperimentConfig {
  data::DatasetSpec spec;
  data::PartitionConfig part;
  fl::TrainConfig train;
  std::size_t K = 20;
  std::size_t rounds = 100;
  /// MLP hidden width (the training substrate's stand-in for the paper's
  /// CNN/ResNet models; see DESIGN.md §2).
  std::size_t hidden = 64;
  Method method = Method::kRandom;
  /// H tentative selections per round; 1 = one-off determination.
  std::size_t multi_time_h = 1;
  /// Evaluate test accuracy every this many rounds (1 = every round).
  std::size_t eval_every = 1;
  std::size_t threads = 0;
  std::uint64_t seed = 1;
  /// Dubhe codec: reference set G (empty = {1, 2, C}) and thresholds
  /// (empty = default_sigma, or parameter search when auto_param_search).
  std::vector<std::size_t> reference_set;
  std::vector<double> sigma;
  bool auto_param_search = false;
  /// Candidate pool size d for Method::kPowerOfChoice.
  std::size_t poc_candidates = 60;
  /// Probability that a selected client drops out before training (paper
  /// Fig. 3 shows drop-outs in the round flow). Survivors train; if all
  /// drop, one random selected client is retained.
  double dropout_prob = 0.0;
};

struct ExperimentResult {
  /// (round, accuracy) at each evaluation point.
  std::vector<std::pair<std::size_t, double>> accuracy_curve;
  /// || p_o - p_u ||_1 per round.
  std::vector<double> po_pu_l1;
  /// EMD* per round when multi-time selection is active.
  std::vector<double> emd_star;
  /// Mean accuracy over the last ~25% of evaluation points (the paper's
  /// "average accuracy over the last 50 rounds" summary).
  double final_accuracy = 0;
  /// Mean population distribution across rounds.
  stats::Distribution mean_population;
  double realized_emd_avg = 0;
  /// Thresholds actually used (after defaulting / parameter search).
  std::vector<double> sigma_used;
};

/// Runs the full FL loop with the configured method and reports the curves.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Selection-only study (no training): repeats selections and accumulates
/// || p_o - p_u ||_1 statistics plus the mean population distribution.
/// This is the machinery behind Fig. 9 and Fig. 10, which the paper runs at
/// full scale (N = 1000, 100 repeats).
struct SelectionStudy {
  double mean_l1 = 0;
  double std_l1 = 0;
  stats::Distribution mean_population;
};
SelectionStudy selection_study(Method method, const data::Partition& part, std::size_t K,
                               std::size_t repeats, std::uint64_t seed,
                               const std::vector<std::size_t>& reference_set = {},
                               const std::vector<double>& sigma = {},
                               std::size_t multi_time_h = 1);

/// Builds the selector for a method over a fixed partition (codec must
/// outlive the returned selector for Dubhe). Throws std::invalid_argument
/// for Method::kPowerOfChoice, which needs a live trainer — run_experiment
/// wires that one internally.
std::unique_ptr<core::SelectionStrategy> make_selector(
    Method method, const std::vector<stats::Distribution>& dists,
    const core::RegistryCodec* codec, const std::vector<double>& sigma);

}  // namespace dubhe::sim
