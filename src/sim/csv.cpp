#include "sim/csv.hpp"

#include <fstream>

namespace dubhe::sim {

bool write_curve_csv(const std::string& path, const ExperimentResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  const bool has_emd_star = !result.emd_star.empty();
  out << "round,test_accuracy,po_pu_l1" << (has_emd_star ? ",emd_star" : "") << "\n";
  std::size_t eval_idx = 0;
  for (std::size_t round = 0; round < result.po_pu_l1.size(); ++round) {
    out << round << ",";
    if (eval_idx < result.accuracy_curve.size() &&
        result.accuracy_curve[eval_idx].first == round) {
      out << result.accuracy_curve[eval_idx].second;
      ++eval_idx;
    }
    out << "," << result.po_pu_l1[round];
    if (has_emd_star) out << "," << result.emd_star[round];
    out << "\n";
  }
  return out.good();
}

bool write_distribution_csv(const std::string& path, const stats::Distribution& d) {
  std::ofstream out(path);
  if (!out) return false;
  out << "class,value\n";
  for (std::size_t c = 0; c < d.size(); ++c) out << c << "," << d[c] << "\n";
  return out.good();
}

}  // namespace dubhe::sim
