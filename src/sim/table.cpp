#include "sim/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dubhe::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  os << std::string(total + 2 * (widths.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string fmt_pct(double v, int precision) {
  return fmt(v * 100.0, precision) + "%";
}

std::string fmt_bytes(double bytes) {
  if (bytes >= 1024.0 * 1024.0) return fmt(bytes / (1024.0 * 1024.0), 2) + " MB";
  if (bytes >= 1024.0) return fmt(bytes / 1024.0, 2) + " KB";
  return fmt(bytes, 0) + " B";
}

std::string fmt_distribution(const std::vector<double>& d, int precision) {
  std::string out = "[";
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (i) out += ' ';
    out += fmt(d[i], precision);
  }
  out += ']';
  return out;
}

}  // namespace dubhe::sim
