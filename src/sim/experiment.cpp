#include "sim/experiment.hpp"

#include <stdexcept>

#include "core/loss_selection.hpp"
#include "nn/builders.hpp"

namespace dubhe::sim {

std::string to_string(Method m) {
  switch (m) {
    case Method::kRandom: return "random";
    case Method::kGreedy: return "greedy";
    case Method::kDubhe: return "dubhe";
    case Method::kPowerOfChoice: return "power-of-choice";
  }
  throw std::invalid_argument("to_string: bad Method");
}

std::vector<double> default_sigma(const std::vector<std::size_t>& G) {
  std::vector<double> sigma(G.size(), 0.0);
  for (std::size_t gi = 0; gi + 1 < G.size(); ++gi) {
    if (G[gi] == 1) {
      sigma[gi] = 0.7;
    } else if (G[gi] == 2) {
      sigma[gi] = 0.1;
    } else {
      sigma[gi] = 0.7 / static_cast<double>(G[gi]);
    }
  }
  return sigma;  // last entry (i = C) stays 0
}

std::unique_ptr<core::SelectionStrategy> make_selector(
    Method method, const std::vector<stats::Distribution>& dists,
    const core::RegistryCodec* codec, const std::vector<double>& sigma) {
  switch (method) {
    case Method::kRandom:
      return std::make_unique<core::RandomSelector>(dists.size());
    case Method::kGreedy:
      return std::make_unique<core::GreedySelector>(dists);
    case Method::kDubhe: {
      auto sel = std::make_unique<core::DubheSelector>(codec, sigma);
      sel->register_clients(dists);
      return sel;
    }
    case Method::kPowerOfChoice:
      throw std::invalid_argument(
          "make_selector: power-of-choice needs a live trainer; use run_experiment");
  }
  throw std::invalid_argument("make_selector: bad Method");
}

namespace {

std::vector<std::size_t> effective_reference_set(const ExperimentConfig& cfg) {
  if (!cfg.reference_set.empty()) return cfg.reference_set;
  if (cfg.part.num_classes <= 2) return {cfg.part.num_classes};
  return {1, 2, cfg.part.num_classes};
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  const data::FederatedDataset dataset(cfg.spec, cfg.part);
  const std::size_t C = dataset.num_classes();
  const auto& dists = dataset.partition().client_dists;

  ExperimentResult result;
  result.realized_emd_avg = dataset.partition().realized_emd_avg;

  // Selector setup (codec + thresholds for Dubhe).
  const auto G = effective_reference_set(cfg);
  const core::RegistryCodec codec(C, G);
  std::vector<double> sigma = cfg.sigma.empty() ? default_sigma(G) : cfg.sigma;
  stats::Rng rng(stats::derive_seed(cfg.seed, 0x5e1ec7));
  if (cfg.method == Method::kDubhe && cfg.auto_param_search) {
    core::ParamSearchConfig ps;
    ps.K = cfg.K;
    ps.tries = std::max<std::size_t>(cfg.multi_time_h, 5);
    for (std::size_t gi = 0; gi < G.size(); ++gi) {
      if (gi + 1 == G.size()) {
        ps.grids.push_back({0.0});
      } else if (G[gi] == 1) {
        ps.grids.push_back({0.5, 0.6, 0.7, 0.8, 0.9});
      } else {
        ps.grids.push_back({0.05, 0.1, 0.15, 0.2, 0.3});
      }
    }
    sigma = core::parameter_search(codec, dists, ps, rng).sigma;
  }
  result.sigma_used = sigma;

  fl::FederatedTrainer trainer(
      dataset, nn::make_mlp(dataset.feature_dim(), cfg.hidden, C, cfg.seed), cfg.train,
      cfg.threads);
  std::unique_ptr<core::SelectionStrategy> selector;
  if (cfg.method == Method::kPowerOfChoice) {
    selector = std::make_unique<core::PowerOfChoiceSelector>(&trainer, cfg.poc_candidates);
  } else {
    selector = make_selector(cfg.method, dists, &codec, sigma);
  }

  stats::VectorStat pop_stat(C);
  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    std::vector<std::size_t> selected;
    if (cfg.multi_time_h > 1) {
      auto outcome = core::multi_time_select(*selector, dists, cfg.K, cfg.multi_time_h, rng);
      result.emd_star.push_back(outcome.emd_star);
      selected = std::move(outcome.selected);
    } else {
      selected = selector->select(cfg.K, rng);
    }
    if (cfg.dropout_prob > 0) {
      std::vector<std::size_t> survivors;
      for (const std::size_t k : selected) {
        if (!rng.bernoulli(cfg.dropout_prob)) survivors.push_back(k);
      }
      if (survivors.empty()) {
        survivors.push_back(selected[rng.below(selected.size())]);
      }
      selected = std::move(survivors);
    }
    const bool eval = (round % cfg.eval_every == 0) || round + 1 == cfg.rounds;
    const fl::RoundResult rr =
        trainer.run_round(selected, stats::derive_seed(cfg.seed, round + 1), eval);
    result.po_pu_l1.push_back(rr.population_l1_to_uniform);
    pop_stat.add(rr.population);
    if (eval) result.accuracy_curve.emplace_back(round, rr.test_accuracy);
  }
  result.mean_population = pop_stat.means();

  // Average over the trailing quarter of evaluation points (>= 1).
  const std::size_t n_eval = result.accuracy_curve.size();
  const std::size_t window = std::max<std::size_t>(1, n_eval / 4);
  double acc = 0;
  for (std::size_t i = n_eval - window; i < n_eval; ++i) {
    acc += result.accuracy_curve[i].second;
  }
  result.final_accuracy = acc / static_cast<double>(window);
  return result;
}

SelectionStudy selection_study(Method method, const data::Partition& part, std::size_t K,
                               std::size_t repeats, std::uint64_t seed,
                               const std::vector<std::size_t>& reference_set,
                               const std::vector<double>& sigma_in,
                               std::size_t multi_time_h) {
  const std::size_t C = part.num_classes();
  const auto& dists = part.client_dists;
  std::vector<std::size_t> G = reference_set;
  if (G.empty()) G = (C <= 2) ? std::vector<std::size_t>{C} : std::vector<std::size_t>{1, 2, C};
  const core::RegistryCodec codec(C, G);
  const std::vector<double> sigma = sigma_in.empty() ? default_sigma(G) : sigma_in;

  stats::Rng rng(stats::derive_seed(seed, 0x57d7));
  auto selector = make_selector(method, dists, &codec, sigma);

  const stats::Distribution pu = stats::uniform(C);
  stats::RunningStat l1_stat;
  stats::VectorStat pop_stat(C);
  for (std::size_t r = 0; r < repeats; ++r) {
    stats::Distribution po;
    if (multi_time_h > 1) {
      po = core::multi_time_select(*selector, dists, K, multi_time_h, rng).population;
    } else {
      po = core::population_of(dists, selector->select(K, rng));
    }
    l1_stat.add(stats::l1_distance(po, pu));
    pop_stat.add(po);
  }
  SelectionStudy out;
  out.mean_l1 = l1_stat.mean();
  out.std_l1 = l1_stat.stddev();
  out.mean_population = pop_stat.means();
  return out;
}

}  // namespace dubhe::sim
