#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dubhe::sim {

/// Fixed-width console table used by every bench binary to print the
/// paper-shaped rows. Columns are sized to the widest cell; numeric
/// formatting is the caller's job (pass preformatted strings or use the
/// fmt helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with a header separator to the stream.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
[[nodiscard]] std::string fmt(double v, int precision = 4);
/// Formats a percentage (0.123 -> "12.3%").
[[nodiscard]] std::string fmt_pct(double v, int precision = 1);
/// Formats a byte count with KB/MB units, paper style.
[[nodiscard]] std::string fmt_bytes(double bytes);

/// Compact inline rendering of a distribution: "[0.21 0.18 ...]".
[[nodiscard]] std::string fmt_distribution(const std::vector<double>& d, int precision = 3);

}  // namespace dubhe::sim
