#include "sim/cli.hpp"

#include <charconv>
#include <cstdlib>

namespace dubhe::sim {

std::string cli_usage() {
  return R"(dubhe_run — federated learning with Dubhe client selection

usage: dubhe_run [flags]

  --dataset mnist|cifar|femnist   synthetic dataset preset   (default mnist)
  --method  random|greedy|dubhe|poc  selection method        (default dubhe)
  --clients N      virtual client count                      (default 300)
  --samples N      samples per client (N_VC)                 (default 128)
  --rho X          global class imbalance ratio              (default 10)
  --emd X          target client EMD_avg                     (default 1.5)
  --rounds N       training rounds                           (default 100)
  --k N            participants per round                    (default 20)
  --h N            multi-time selection tries                (default 1)
  --lr X           local learning rate                       (default 1e-3)
  --epochs N       local epochs E                            (default 1)
  --batch N        local batch size B                        (default 8)
  --dropout X      per-client dropout probability            (default 0)
  --prox-mu X      FedProx proximal coefficient              (default 0)
  --auto-sigma     run parameter search for the thresholds
  --resample       fresh local data every round (paper 4.1)
  --eval-every N   test-set evaluation cadence               (default 10)
  --threads N      training threads (0 = hardware)           (default 0)
  --seed N         master seed                               (default 1)
  --csv PATH       write round curves as CSV
  --population-csv PATH  write the mean population distribution
  --help           this text
)";
}

namespace {

bool parse_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

bool parse_size(const std::string& s, std::size_t& out) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end && !s.empty();
}

}  // namespace

CliOptions parse_cli(std::span<const std::string> args) {
  CliOptions opt;
  ExperimentConfig& cfg = opt.config;
  // Tool defaults: the quickstart-style setting.
  cfg.spec = data::mnist_like();
  cfg.part.num_classes = cfg.spec.num_classes;
  cfg.part.num_clients = 300;
  cfg.part.samples_per_client = 128;
  cfg.part.rho = 10;
  cfg.part.emd_avg = 1.5;
  cfg.train = {.batch_size = 8, .epochs = 1, .lr = 1e-3, .use_adam = true};
  cfg.K = 20;
  cfg.rounds = 100;
  cfg.eval_every = 10;
  cfg.method = Method::kDubhe;

  const auto fail = [&opt](std::string msg) -> CliOptions& {
    opt.valid = false;
    opt.error = std::move(msg);
    return opt;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help") {
      opt.show_help = true;
      return opt;
    }
    if (flag == "--auto-sigma") {
      cfg.auto_param_search = true;
      continue;
    }
    if (flag == "--resample") {
      cfg.train.resample_each_round = true;
      continue;
    }
    // Everything else takes a value.
    if (i + 1 >= args.size()) return fail("missing value for " + flag);
    const std::string& value = args[++i];

    if (flag == "--dataset") {
      if (value == "mnist") {
        cfg.spec = data::mnist_like();
      } else if (value == "cifar") {
        cfg.spec = data::cifar_like();
      } else if (value == "femnist") {
        cfg.spec = data::femnist_like();
        cfg.reference_set = {1, 52};
      } else {
        return fail("unknown dataset: " + value);
      }
      cfg.part.num_classes = cfg.spec.num_classes;
    } else if (flag == "--method") {
      if (value == "random") cfg.method = Method::kRandom;
      else if (value == "greedy") cfg.method = Method::kGreedy;
      else if (value == "dubhe") cfg.method = Method::kDubhe;
      else if (value == "poc") cfg.method = Method::kPowerOfChoice;
      else return fail("unknown method: " + value);
    } else if (flag == "--clients") {
      if (!parse_size(value, cfg.part.num_clients)) return fail("bad --clients");
    } else if (flag == "--samples") {
      if (!parse_size(value, cfg.part.samples_per_client)) return fail("bad --samples");
    } else if (flag == "--rho") {
      if (!parse_double(value, cfg.part.rho)) return fail("bad --rho");
    } else if (flag == "--emd") {
      if (!parse_double(value, cfg.part.emd_avg)) return fail("bad --emd");
    } else if (flag == "--rounds") {
      if (!parse_size(value, cfg.rounds)) return fail("bad --rounds");
    } else if (flag == "--k") {
      if (!parse_size(value, cfg.K)) return fail("bad --k");
    } else if (flag == "--h") {
      if (!parse_size(value, cfg.multi_time_h)) return fail("bad --h");
    } else if (flag == "--lr") {
      if (!parse_double(value, cfg.train.lr)) return fail("bad --lr");
    } else if (flag == "--epochs") {
      if (!parse_size(value, cfg.train.epochs)) return fail("bad --epochs");
    } else if (flag == "--batch") {
      if (!parse_size(value, cfg.train.batch_size)) return fail("bad --batch");
    } else if (flag == "--dropout") {
      if (!parse_double(value, cfg.dropout_prob)) return fail("bad --dropout");
    } else if (flag == "--prox-mu") {
      if (!parse_double(value, cfg.train.prox_mu)) return fail("bad --prox-mu");
    } else if (flag == "--eval-every") {
      if (!parse_size(value, cfg.eval_every)) return fail("bad --eval-every");
    } else if (flag == "--threads") {
      if (!parse_size(value, cfg.threads)) return fail("bad --threads");
    } else if (flag == "--seed") {
      std::size_t seed = 0;
      if (!parse_size(value, seed)) return fail("bad --seed");
      cfg.seed = seed;
      cfg.part.seed = stats::derive_seed(seed, 0xDA7A);
    } else if (flag == "--csv") {
      opt.csv_path = value;
    } else if (flag == "--population-csv") {
      opt.population_csv = value;
    } else {
      return fail("unknown flag: " + flag);
    }
  }
  if (cfg.K > cfg.part.num_clients) return fail("--k exceeds --clients");
  if (cfg.eval_every == 0) return fail("--eval-every must be positive");
  if (cfg.rounds == 0) return fail("--rounds must be positive");
  return opt;
}

}  // namespace dubhe::sim
