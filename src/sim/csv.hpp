#pragma once

#include <string>

#include "sim/experiment.hpp"

namespace dubhe::sim {

/// Writes an experiment's curves as CSV with header
/// `round,test_accuracy,po_pu_l1[,emd_star]` — one row per round; accuracy
/// cells are empty on rounds that were not evaluation points. Returns false
/// (and writes nothing) if the file cannot be opened.
bool write_curve_csv(const std::string& path, const ExperimentResult& result);

/// Writes a distribution as `class,value` rows. Returns false on I/O error.
bool write_distribution_csv(const std::string& path, const stats::Distribution& d);

}  // namespace dubhe::sim
