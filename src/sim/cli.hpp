#pragma once

#include <span>
#include <string>

#include "sim/experiment.hpp"

namespace dubhe::sim {

/// Parsed command line of the `dubhe_run` tool.
struct CliOptions {
  ExperimentConfig config;
  std::string csv_path;           // empty = no CSV output
  std::string population_csv;     // empty = no population dump
  bool show_help = false;
  bool valid = true;
  std::string error;              // set when !valid
};

/// Usage text for --help.
std::string cli_usage();

/// Parses `args` (without argv[0]). Unknown flags, malformed numbers and
/// missing values yield valid = false with a message — never throws, never
/// exits, so the parser is unit-testable.
///
/// Flags: --dataset mnist|cifar|femnist, --method random|greedy|dubhe|poc,
/// --clients N, --samples N, --rho X, --emd X, --rounds N, --k N, --h N,
/// --seed N, --lr X, --epochs N, --batch N, --dropout X, --prox-mu X,
/// --auto-sigma, --resample, --threads N, --eval-every N,
/// --csv PATH, --population-csv PATH, --help.
CliOptions parse_cli(std::span<const std::string> args);

}  // namespace dubhe::sim
