#pragma once

#include <cstdint>

#include "data/partition.hpp"

namespace dubhe::data {

/// Simulates data drift in a live FL system (paper §5.1: "the registration
/// process is performed periodically in order to follow up on the states of
/// clients"; §5.3.2: parameter search re-runs when the system changes).
/// A `fraction` of clients is chosen uniformly and their label counts are
/// replaced by freshly generated ones under the same PartitionConfig (new
/// dominating classes, same global profile), then the realized global
/// distribution and EMD are recomputed.
///
/// Returned partitions are valid inputs for registration; the
/// ablation_robustness bench uses this to show that a *stale* registry
/// degrades data unbiasedness while periodic re-registration holds it.
Partition drift_partition(const Partition& part, const PartitionConfig& cfg,
                          double fraction, std::uint64_t seed);

}  // namespace dubhe::data
