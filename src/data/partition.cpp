#include "data/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "stats/halfnormal.hpp"

namespace dubhe::data {

namespace {

/// Core largest-remainder pass over raw (non-negative) exact values.
std::vector<std::size_t> round_exact(const std::vector<double>& exact, std::size_t total) {
  const std::size_t C = exact.size();
  std::vector<std::size_t> counts(C, 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (frac, class)
  remainders.reserve(C);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < C; ++c) {
    const double v = std::max(exact[c], 0.0);
    const auto floor_val = static_cast<std::size_t>(v);
    counts[c] = floor_val;
    assigned += floor_val;
    remainders.emplace_back(v - static_cast<double>(floor_val), c);
  }
  if (assigned > total) {
    // Residual-inflated values can overshoot; trim from the smallest
    // fractional parts upward, never below zero.
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; assigned > total && i < remainders.size(); ++i) {
      while (assigned > total && counts[remainders[i].second] > 0) {
        --counts[remainders[i].second];
        --assigned;
      }
    }
    return counts;
  }
  // Hand out the leftover units to the largest fractional parts; ties break
  // toward lower class index for determinism.
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < total && i < remainders.size(); ++i, ++assigned) {
    ++counts[remainders[i].second];
  }
  // Degenerate case (all-zero input): dump the rest on class 0.
  while (assigned < total) {
    ++counts[0];
    ++assigned;
  }
  return counts;
}

}  // namespace

std::vector<std::size_t> round_counts(const stats::Distribution& p, std::size_t total) {
  std::vector<double> exact(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) exact[c] = p[c] * static_cast<double>(total);
  return round_exact(exact, total);
}

std::vector<std::size_t> round_counts_feedback(const stats::Distribution& p,
                                               std::size_t total,
                                               std::vector<double>& residual) {
  if (residual.size() != p.size()) {
    throw std::invalid_argument("round_counts_feedback: residual size mismatch");
  }
  std::vector<double> exact(p.size());
  for (std::size_t c = 0; c < p.size(); ++c) {
    exact[c] = p[c] * static_cast<double>(total) + residual[c];
  }
  std::vector<std::size_t> counts = round_exact(exact, total);
  for (std::size_t c = 0; c < p.size(); ++c) {
    residual[c] = exact[c] - static_cast<double>(counts[c]);
  }
  return counts;
}

Partition make_partition(const PartitionConfig& cfg) {
  if (cfg.emd_avg < 0 || cfg.emd_avg >= 2.0) {
    throw std::invalid_argument("make_partition: emd_avg must be in [0, 2)");
  }
  if (cfg.num_classes == 0 || cfg.num_clients == 0 || cfg.samples_per_client == 0) {
    throw std::invalid_argument("make_partition: empty dimensions");
  }
  stats::Rng rng(stats::derive_seed(cfg.seed, 0x9a27));

  Partition part;
  part.global_profile = stats::half_normal_profile(cfg.num_classes, cfg.rho);
  const stats::Distribution& pg = part.global_profile;
  const std::size_t N = cfg.num_clients, C = cfg.num_classes;

  // Pass 1: assign each client's dominating-class set D_k. Classes are
  // drawn proportionally to a *feedback residual* that tracks how much spike
  // mass each class still deserves (target: aggregate spike mass = p_g, so
  // the realized global distribution keeps the configured profile instead of
  // drifting by Poisson noise on the minority classes). Record the spike
  // distance e_k = ||s_k - p_g||_1 = 2 (1 - sum_{j in D_k} p_g(j)).
  std::vector<std::vector<std::size_t>> dominant(N);
  std::vector<double> spike_dist(N, 0);
  std::vector<double> spike_residual(C, 0.0);
  double mean_e = 0;
  for (std::size_t k = 0; k < N; ++k) {
    if (cfg.emd_avg > 0) {
      // This client will place one unit of spike mass; its fair share per
      // class is p_g.
      for (std::size_t c = 0; c < C; ++c) spike_residual[c] += pg[c];
      const std::size_t d = rng.bernoulli(cfg.two_dominant_fraction) && C >= 2 ? 2 : 1;
      std::vector<double> weights(C);
      for (std::size_t c = 0; c < C; ++c) {
        weights[c] = std::max(spike_residual[c], 0.0) + 1e-9;
      }
      dominant[k] = rng.sample_without_replacement(weights, d);
      // The spike splits evenly within D_k (both dominating classes clear
      // the same threshold, as in the paper's registry examples).
      const double share = 1.0 / static_cast<double>(d);
      for (const std::size_t j : dominant[k]) spike_residual[j] -= share;
      double dist = 0;
      for (std::size_t c = 0; c < C; ++c) {
        const bool in_d =
            std::find(dominant[k].begin(), dominant[k].end(), c) != dominant[k].end();
        dist += std::abs((in_d ? share : 0.0) - pg[c]);
      }
      spike_dist[k] = dist;
    }
    mean_e += spike_dist[k];
  }
  mean_e /= static_cast<double>(N);

  // Pass 2: client distribution p_k = (1-alpha) p_g + alpha s_k, rounded to
  // integer counts. Small per-client sample budgets quantize distributions
  // and push the realized EMD above the analytic alpha * mean_e, so alpha is
  // adjusted with a couple of proportional-control iterations and the
  // closest realization wins. (When samples_per_client < num_classes the
  // quantization floor can exceed the target entirely — e.g. FEMNIST-style
  // 32 samples over 52 classes — in which case the floor is returned; see
  // realized_emd_avg.)
  const auto build_with_alpha = [&](double alpha) {
    part.client_counts.assign(N, {});
    part.client_dists.assign(N, {});
    std::vector<std::size_t> global_counts(C, 0);
    std::vector<double> residual(C, 0.0);  // error feedback keeps the mix on-profile
    for (std::size_t k = 0; k < N; ++k) {
      stats::Distribution pk(pg.begin(), pg.end());
      if (alpha > 0 && !dominant[k].empty()) {
        for (double& v : pk) v *= (1.0 - alpha);
        const double share = alpha / static_cast<double>(dominant[k].size());
        for (const std::size_t j : dominant[k]) pk[j] += share;
      }
      part.client_counts[k] = round_counts_feedback(pk, cfg.samples_per_client, residual);
      for (std::size_t c = 0; c < C; ++c) global_counts[c] += part.client_counts[k][c];
      part.client_dists[k] = stats::from_counts(part.client_counts[k]);
    }
    part.global_realized = stats::from_counts(global_counts);
    double emd_sum = 0;
    for (std::size_t k = 0; k < N; ++k) {
      emd_sum += stats::l1_distance(part.client_dists[k], part.global_realized);
    }
    part.realized_emd_avg = emd_sum / static_cast<double>(N);
  };

  double alpha = cfg.emd_avg <= 0 || mean_e <= 0 ? 0.0 : std::min(1.0, cfg.emd_avg / mean_e);
  build_with_alpha(alpha);
  if (cfg.emd_avg > 0) {
    double best_alpha = alpha, best_err = std::abs(part.realized_emd_avg - cfg.emd_avg);
    for (int iter = 0; iter < 3 && best_err > 0.01; ++iter) {
      alpha = std::min(1.0, std::max(0.0, alpha * cfg.emd_avg /
                                              std::max(part.realized_emd_avg, 1e-9)));
      build_with_alpha(alpha);
      const double err = std::abs(part.realized_emd_avg - cfg.emd_avg);
      if (err < best_err) {
        best_err = err;
        best_alpha = alpha;
      }
    }
    if (alpha != best_alpha) build_with_alpha(best_alpha);
  }
  return part;
}

}  // namespace dubhe::data
