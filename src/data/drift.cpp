#include "data/drift.hpp"

#include <stdexcept>

namespace dubhe::data {

Partition drift_partition(const Partition& part, const PartitionConfig& cfg,
                          double fraction, std::uint64_t seed) {
  if (fraction < 0 || fraction > 1) {
    throw std::invalid_argument("drift_partition: fraction must be in [0, 1]");
  }
  if (part.num_clients() != cfg.num_clients || part.num_classes() != cfg.num_classes) {
    throw std::invalid_argument("drift_partition: partition/config mismatch");
  }
  const std::size_t N = part.num_clients(), C = part.num_classes();
  const auto drifters = static_cast<std::size_t>(fraction * static_cast<double>(N) + 0.5);

  // Fresh donor partition under the same statistical regime but a new seed.
  PartitionConfig donor_cfg = cfg;
  donor_cfg.seed = stats::derive_seed(seed, 0xd21f7);
  const Partition donor = make_partition(donor_cfg);

  Partition out = part;
  stats::Rng rng(stats::derive_seed(seed, 0x5eed));
  for (const std::size_t k : rng.choose_k_of_n(drifters, N)) {
    out.client_counts[k] = donor.client_counts[k];
    out.client_dists[k] = donor.client_dists[k];
  }

  std::vector<std::size_t> global_counts(C, 0);
  for (const auto& row : out.client_counts) {
    for (std::size_t c = 0; c < C; ++c) global_counts[c] += row[c];
  }
  out.global_realized = stats::from_counts(global_counts);
  double emd_sum = 0;
  for (std::size_t k = 0; k < N; ++k) {
    emd_sum += stats::l1_distance(out.client_dists[k], out.global_realized);
  }
  out.realized_emd_avg = emd_sum / static_cast<double>(N);
  return out;
}

}  // namespace dubhe::data
