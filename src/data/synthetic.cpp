#include "data/synthetic.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace dubhe::data {

DatasetSpec mnist_like() {
  return DatasetSpec{.name = "mnist-like",
                     .num_classes = 10,
                     .feature_dim = 32,
                     .noise_sigma = 0.25,
                     .label_noise = 0.0,
                     .proto_seed = 0xA11CE};
}

DatasetSpec cifar_like() {
  return DatasetSpec{.name = "cifar10-like",
                     .num_classes = 10,
                     .feature_dim = 32,
                     .noise_sigma = 0.55,
                     .label_noise = 0.08,
                     .proto_seed = 0xBEEF};
}

DatasetSpec femnist_like() {
  return DatasetSpec{.name = "femnist-like",
                     .num_classes = 52,
                     .feature_dim = 64,
                     .noise_sigma = 0.35,
                     .label_noise = 0.03,
                     .proto_seed = 0xFE3757};
}

SyntheticGenerator::SyntheticGenerator(DatasetSpec spec) : spec_(std::move(spec)) {
  if (spec_.num_classes == 0 || spec_.feature_dim == 0) {
    throw std::invalid_argument("SyntheticGenerator: empty spec");
  }
  // Unit-norm Gaussian prototypes; with F >> log C they are near-orthogonal,
  // so pairwise separation is uniform and difficulty is set by noise_sigma.
  prototypes_.resize(spec_.num_classes * spec_.feature_dim);
  stats::Rng rng(spec_.proto_seed);
  for (std::size_t c = 0; c < spec_.num_classes; ++c) {
    float* row = prototypes_.data() + c * spec_.feature_dim;
    double norm_sq = 0;
    for (std::size_t f = 0; f < spec_.feature_dim; ++f) {
      row[f] = static_cast<float>(rng.normal());
      norm_sq += static_cast<double>(row[f]) * row[f];
    }
    const auto inv_norm = static_cast<float>(1.0 / std::sqrt(std::max(norm_sq, 1e-12)));
    for (std::size_t f = 0; f < spec_.feature_dim; ++f) row[f] *= inv_norm;
  }
}

std::span<const float> SyntheticGenerator::prototype(std::size_t cls) const {
  if (cls >= spec_.num_classes) throw std::out_of_range("prototype: bad class");
  return {prototypes_.data() + cls * spec_.feature_dim, spec_.feature_dim};
}

void SyntheticGenerator::features_into(std::size_t cls, std::uint64_t index,
                                       std::span<float> out) const {
  if (cls >= spec_.num_classes) throw std::out_of_range("features_into: bad class");
  if (out.size() != spec_.feature_dim) {
    throw std::invalid_argument("features_into: wrong output size");
  }
  const std::uint64_t seed =
      stats::derive_seed(spec_.proto_seed, (static_cast<std::uint64_t>(cls) << 40) ^ index);
  stats::Rng rng(seed);
  const float* proto = prototypes_.data() + cls * spec_.feature_dim;
  const auto sigma = static_cast<float>(spec_.noise_sigma);
  for (std::size_t f = 0; f < spec_.feature_dim; ++f) {
    out[f] = proto[f] + sigma * static_cast<float>(rng.normal());
  }
}

std::size_t SyntheticGenerator::observed_label(std::size_t cls, std::uint64_t index) const {
  if (spec_.label_noise <= 0) return cls;
  const std::uint64_t seed = stats::derive_seed(
      spec_.proto_seed ^ 0x17ab3u, (static_cast<std::uint64_t>(cls) << 40) ^ index);
  stats::Rng rng(seed);
  if (!rng.bernoulli(spec_.label_noise)) return cls;
  // Deterministic corrupted label, never equal to the true class.
  const std::size_t other = rng.below(spec_.num_classes - 1);
  return other >= cls ? other + 1 : other;
}

}  // namespace dubhe::data
