#pragma once

#include <vector>

#include "data/federated.hpp"
#include "stats/rng.hpp"

namespace dubhe::data {

/// FedVC-style virtual client splitting (paper §4.1, borrowed from Hsu et
/// al.): clients with more than `nvc` samples are split into several virtual
/// clients and clients with fewer duplicate samples, so every virtual client
/// holds exactly `nvc` samples and plain (unweighted) averaging is unbiased.
///
/// Returns the virtual clients' sample lists plus a map from virtual client
/// to originating real client.
struct VirtualSplit {
  std::vector<std::vector<Sample>> virtual_clients;
  std::vector<std::size_t> origin;  // virtual index -> real client index
};

VirtualSplit split_virtual_clients(const std::vector<std::vector<Sample>>& real_clients,
                                   std::size_t nvc, stats::Rng& rng);

}  // namespace dubhe::data
