#include "data/virtual_clients.hpp"

#include <stdexcept>

namespace dubhe::data {

VirtualSplit split_virtual_clients(const std::vector<std::vector<Sample>>& real_clients,
                                   std::size_t nvc, stats::Rng& rng) {
  if (nvc == 0) throw std::invalid_argument("split_virtual_clients: nvc == 0");
  VirtualSplit out;
  for (std::size_t k = 0; k < real_clients.size(); ++k) {
    const auto& samples = real_clients[k];
    if (samples.empty()) continue;  // a client with no data contributes nothing
    // Shuffle a copy so splits are not biased by generation order.
    std::vector<Sample> pool = samples;
    rng.shuffle(pool);
    const std::size_t pieces = (pool.size() + nvc - 1) / nvc;
    for (std::size_t piece = 0; piece < pieces; ++piece) {
      std::vector<Sample> vc;
      vc.reserve(nvc);
      for (std::size_t j = 0; j < nvc; ++j) {
        // Wrap around: small tails duplicate samples until the virtual
        // client is full, exactly as FedVC prescribes for small clients.
        vc.push_back(pool[(piece * nvc + j) % pool.size()]);
      }
      out.virtual_clients.push_back(std::move(vc));
      out.origin.push_back(k);
    }
  }
  return out;
}

}  // namespace dubhe::data
