#pragma once

#include <cstdint>
#include <vector>

#include "stats/distribution.hpp"
#include "stats/rng.hpp"

namespace dubhe::data {

/// Parameters of a federated label partition, mirroring the paper's Table 1:
/// a global class profile with imbalance ratio `rho` (half-normal shape) and
/// a per-client discrepancy targeted at `emd_avg` = mean_k ||p_k - p_g||_1.
struct PartitionConfig {
  std::size_t num_classes = 10;
  std::size_t num_clients = 1000;
  /// Samples per (virtual) client — the paper's N_VC.
  std::size_t samples_per_client = 128;
  /// Global class imbalance ratio (most / least frequent). >= 1.
  double rho = 1.0;
  /// Target average EMD between client and global label distributions,
  /// in [0, 2). Targets above the structural maximum (clients fully
  /// concentrated on their dominating classes) are clamped; check
  /// Partition::realized_emd_avg.
  double emd_avg = 0.0;
  /// Fraction of clients whose local skew concentrates on two classes
  /// rather than one (the registry's G = {1, 2, C} mirrors this structure).
  double two_dominant_fraction = 0.3;
  std::uint64_t seed = 1;
};

/// The realized partition: integer label counts per client plus derived
/// distributions. Counts are produced by largest-remainder rounding, so each
/// client has exactly samples_per_client samples.
struct Partition {
  /// Configured global profile p_g (what rho parameterizes).
  stats::Distribution global_profile;
  /// Realized global label distribution (aggregate of client counts).
  stats::Distribution global_realized;
  /// N x C integer label counts.
  std::vector<std::vector<std::size_t>> client_counts;
  /// Normalized rows of client_counts.
  std::vector<stats::Distribution> client_dists;
  /// mean_k || p_k - p_g_realized ||_1 over the realized counts.
  double realized_emd_avg = 0;

  [[nodiscard]] std::size_t num_clients() const { return client_counts.size(); }
  [[nodiscard]] std::size_t num_classes() const { return global_profile.size(); }
};

/// Builds a partition. Deterministic in cfg.seed. Throws
/// std::invalid_argument for emd_avg outside [0, 2) or rho < 1.
Partition make_partition(const PartitionConfig& cfg);

/// Largest-remainder (Hamilton) rounding of `p * total` to integers summing
/// exactly to `total`. Exposed for reuse and testing.
std::vector<std::size_t> round_counts(const stats::Distribution& p, std::size_t total);

/// Largest-remainder rounding with error feedback: rounds `p * total +
/// residual` and updates `residual` with the leftover rounding error. Used
/// across a client sequence so that per-client quantization does not
/// systematically starve minority classes (keeps the realized global
/// distribution within O(C) samples of the configured profile).
std::vector<std::size_t> round_counts_feedback(const stats::Distribution& p,
                                               std::size_t total,
                                               std::vector<double>& residual);

}  // namespace dubhe::data
