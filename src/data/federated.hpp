#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace dubhe::data {

/// A training sample key: the generator rematerializes features and the
/// observed label from (label, instance) deterministically, so datasets are
/// cheap to hold even at N = 8962 clients.
struct Sample {
  std::size_t cls = 0;        // true class (drives feature generation)
  std::uint64_t instance = 0; // unique per class

  bool operator==(const Sample&) const = default;
};

/// A complete federated dataset: the label partition, per-client sample
/// lists, the synthetic feature generator, and a balanced test set (the
/// paper evaluates on a test set uniform across classes).
class FederatedDataset {
 public:
  FederatedDataset(DatasetSpec spec, PartitionConfig pcfg, std::size_t test_per_class = 64);

  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }
  [[nodiscard]] std::size_t num_classes() const { return gen_.num_classes(); }
  [[nodiscard]] std::size_t feature_dim() const { return gen_.feature_dim(); }
  [[nodiscard]] const SyntheticGenerator& generator() const { return gen_; }
  [[nodiscard]] const Partition& partition() const { return partition_; }

  [[nodiscard]] std::span<const Sample> client_samples(std::size_t k) const;
  /// Client k's label distribution (what the client itself can compute and
  /// what Dubhe's registration consumes).
  [[nodiscard]] const stats::Distribution& client_distribution(std::size_t k) const;
  [[nodiscard]] const stats::Distribution& global_distribution() const {
    return partition_.global_realized;
  }
  [[nodiscard]] const std::vector<Sample>& test_samples() const { return test_; }

  /// Materializes a batch: X is batch x feature_dim row-major, y gets the
  /// observed labels. Spans must be exactly sized.
  void materialize(std::span<const Sample> batch, std::span<float> X,
                   std::span<std::size_t> y) const;

 private:
  SyntheticGenerator gen_;
  Partition partition_;
  std::vector<std::vector<Sample>> clients_;
  std::vector<Sample> test_;
};

}  // namespace dubhe::data
