#include "data/federated.hpp"

#include <stdexcept>

namespace dubhe::data {

namespace {
/// Test instances use a disjoint id range so they never collide with any
/// training instance of the same class.
constexpr std::uint64_t kTestInstanceBase = std::uint64_t{1} << 60;
}  // namespace

FederatedDataset::FederatedDataset(DatasetSpec spec, PartitionConfig pcfg,
                                   std::size_t test_per_class)
    : gen_(std::move(spec)), partition_(make_partition(pcfg)) {
  if (gen_.num_classes() != pcfg.num_classes) {
    throw std::invalid_argument("FederatedDataset: spec/partition class mismatch");
  }
  const std::size_t N = partition_.num_clients();
  const std::size_t C = partition_.num_classes();

  // Assign every client's samples fresh instance ids per class, so every
  // training sample in the federation is a distinct draw.
  std::vector<std::uint64_t> next_instance(C, 0);
  clients_.resize(N);
  for (std::size_t k = 0; k < N; ++k) {
    auto& list = clients_[k];
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t j = 0; j < partition_.client_counts[k][c]; ++j) {
        list.push_back(Sample{c, next_instance[c]++});
      }
    }
  }

  test_.reserve(C * test_per_class);
  for (std::size_t c = 0; c < C; ++c) {
    for (std::size_t j = 0; j < test_per_class; ++j) {
      test_.push_back(Sample{c, kTestInstanceBase + j});
    }
  }
}

std::span<const Sample> FederatedDataset::client_samples(std::size_t k) const {
  if (k >= clients_.size()) throw std::out_of_range("client_samples: bad client");
  return clients_[k];
}

const stats::Distribution& FederatedDataset::client_distribution(std::size_t k) const {
  if (k >= clients_.size()) throw std::out_of_range("client_distribution: bad client");
  return partition_.client_dists[k];
}

void FederatedDataset::materialize(std::span<const Sample> batch, std::span<float> X,
                                   std::span<std::size_t> y) const {
  const std::size_t F = gen_.feature_dim();
  if (X.size() != batch.size() * F || y.size() != batch.size()) {
    throw std::invalid_argument("materialize: output size mismatch");
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    gen_.features_into(batch[i].cls, batch[i].instance, X.subspan(i * F, F));
    y[i] = gen_.observed_label(batch[i].cls, batch[i].instance);
  }
}

}  // namespace dubhe::data
