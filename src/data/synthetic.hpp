#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dubhe::data {

/// Specification of a synthetic classification dataset. Real MNIST / CIFAR10
/// / FEMNIST files are not available offline, so we substitute Gaussian
/// class-prototype data calibrated to the same class count and a comparable
/// difficulty (see DESIGN.md §2): a sample of class c is
///   x = prototype_c + noise_sigma * N(0, I),
/// with an optional `label_noise` fraction of corrupted labels to cap the
/// achievable accuracy the way natural-image ambiguity does.
struct DatasetSpec {
  std::string name;
  std::size_t num_classes = 10;
  std::size_t feature_dim = 32;
  /// Within-class isotropic noise relative to unit-norm prototypes.
  double noise_sigma = 1.0;
  /// Probability a sample's label is resampled uniformly (difficulty knob).
  double label_noise = 0.0;
  /// Seed of the prototype matrix (fixed per dataset, not per run).
  std::uint64_t proto_seed = 7;
};

/// MNIST-like: 10 well-separated classes, ~97% linear-probe ceiling.
DatasetSpec mnist_like();
/// CIFAR10-like: 10 overlapping classes + label noise, ~60% ceiling.
DatasetSpec cifar_like();
/// FEMNIST-letters-like: 52 classes, moderate overlap, ~40-60% ceiling.
DatasetSpec femnist_like();

/// Deterministic sample generator: features depend only on
/// (spec.proto_seed, class, instance index), so any client — and the test
/// harness — can rematerialize a sample from its (label, instance) key
/// without storing the pool.
class SyntheticGenerator {
 public:
  explicit SyntheticGenerator(DatasetSpec spec);

  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t feature_dim() const { return spec_.feature_dim; }
  [[nodiscard]] std::size_t num_classes() const { return spec_.num_classes; }

  /// Writes the feature vector of instance (cls, index) into `out`
  /// (out.size() must equal feature_dim()).
  void features_into(std::size_t cls, std::uint64_t index, std::span<float> out) const;
  /// Observed label for the instance — equals `cls` except with probability
  /// label_noise, when it is a deterministic pseudo-random other class.
  [[nodiscard]] std::size_t observed_label(std::size_t cls, std::uint64_t index) const;
  /// Prototype of a class (unit norm), mostly for tests/diagnostics.
  [[nodiscard]] std::span<const float> prototype(std::size_t cls) const;

 private:
  DatasetSpec spec_;
  std::vector<float> prototypes_;  // num_classes x feature_dim, row-major
};

}  // namespace dubhe::data
